//! Property-based tests for the Reed-Solomon codec: for arbitrary data
//! and any erasure pattern of at most `m` shards, reconstruction must be
//! exact.

use deliba_ec::ReedSolomon;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn rs_round_trip_any_data_any_erasures(
        data in proptest::collection::vec(any::<u8>(), 1..8192),
        k in 2usize..8,
        m in 1usize..4,
        seed in any::<u64>(),
    ) {
        let rs = ReedSolomon::new(k, m);
        let shards = rs.encode(&data);
        prop_assert_eq!(shards.len(), k + m);

        // Pick up to m distinct erasures pseudo-randomly from the seed.
        let mut erase: Vec<usize> = (0..k + m).collect();
        let mut s = seed;
        for i in (1..erase.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (s >> 33) as usize % (i + 1);
            erase.swap(i, j);
        }
        let n_erase = (seed as usize) % (m + 1);
        let mut opt: Vec<Option<Vec<u8>>> = shards.into_iter().map(Some).collect();
        for &e in erase.iter().take(n_erase) {
            opt[e] = None;
        }

        rs.reconstruct(&mut opt).expect("≤ m erasures must be recoverable");
        prop_assert_eq!(rs.join(&opt, data.len()), data);
    }

    #[test]
    fn parity_deterministic(
        data in proptest::collection::vec(any::<u8>(), 1..4096),
    ) {
        let rs = ReedSolomon::new(4, 2);
        let a = rs.encode(&data);
        let b = rs.encode(&data);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn parity_is_linear(
        a in proptest::collection::vec(any::<u8>(), 256..257),
        b in proptest::collection::vec(any::<u8>(), 256..257),
    ) {
        // GF(2) linearity: encode(a ⊕ b) = encode(a) ⊕ encode(b) —
        // the invariant the RTL encoder's XOR datapath relies on.
        let rs = ReedSolomon::new(4, 2);
        let xored: Vec<u8> = a.iter().zip(&b).map(|(x, y)| x ^ y).collect();
        let ea = rs.encode(&a);
        let eb = rs.encode(&b);
        let ex = rs.encode(&xored);
        for i in 0..6 {
            let manual: Vec<u8> = ea[i].iter().zip(&eb[i]).map(|(x, y)| x ^ y).collect();
            prop_assert_eq!(&manual, &ex[i], "shard {}", i);
        }
    }
}
