//! Property test: the epoch-keyed placement cache is invisible.
//!
//! For any sequence of map mutations — reweights, item removal and
//! re-addition, DFX bucket-algorithm swaps, OSDs going down and coming
//! back — a cached `acting_set` must equal a fresh CRUSH walk at every
//! step.  This is the output-invariance contract the engine's fast path
//! relies on: if this holds, enabling the cache cannot change a single
//! simulated byte.

use deliba_cluster::{OsdMap, PgId, PoolConfig};
use deliba_crush::{BucketAlg, MapBuilder, WEIGHT_ONE};
use proptest::prelude::*;

const HOSTS: usize = 8;
const PER_HOST: usize = 4;

/// One step of map churn, interpreted over the fixed testbed layout.
#[derive(Debug, Clone)]
enum Churn {
    /// Reweight OSD `osd` inside its host to `weight`.
    Reweight { osd: i32, weight: u32 },
    /// Remove OSD `osd` from its host, then add it back at full weight
    /// (decommission + replacement — two epoch bumps).
    RemoveAdd { osd: i32 },
    /// Swap the selection algorithm of the host holding `osd` (the DFX
    /// case).
    SetAlg { osd: i32, alg: BucketAlg },
    /// Mark an OSD down, or back up.
    DownUp { osd: i32, up: bool },
}

fn churn_step() -> impl Strategy<Value = Churn> {
    let osd = 0i32..(HOSTS * PER_HOST) as i32;
    prop_oneof![
        (osd.clone(), 1u32..=2 * WEIGHT_ONE)
            .prop_map(|(osd, weight)| Churn::Reweight { osd, weight }),
        osd.clone().prop_map(|osd| Churn::RemoveAdd { osd }),
        // Uniform requires equal weights, which churn breaks — exercise
        // the unequal-weight-capable algorithms.
        (
            osd.clone(),
            prop_oneof![
                Just(BucketAlg::List),
                Just(BucketAlg::Tree),
                Just(BucketAlg::Straw),
                Just(BucketAlg::Straw2),
            ]
        )
            .prop_map(|(osd, alg)| Churn::SetAlg { osd, alg }),
        (osd, any::<bool>()).prop_map(|(osd, up)| Churn::DownUp { osd, up }),
    ]
}

fn testbed() -> OsdMap {
    let mut m = OsdMap::new(MapBuilder::new().build(HOSTS, PER_HOST));
    m.add_pool(PoolConfig::replicated(1, "rbd", 3, 64, 0));
    m.add_pool(PoolConfig::erasure(2, "ec", 4, 2, 64, 1));
    m
}

/// The host bucket (type 1) holding `osd`.
fn host_of(m: &OsdMap, osd: i32) -> i32 {
    m.crush().domain_of(osd, 1).expect("every osd has a host")
}

fn check_all_pgs(m: &OsdMap) {
    for pool in [1u32, 2] {
        let p = m.pool(pool).unwrap();
        for seq in 0..64 {
            let pg = PgId { pool, seq };
            let cold = m.acting_set(pg); // miss (or refill) at this epoch
            let warm = m.acting_set(pg); // guaranteed same-epoch hit
            let fresh = m.crush().do_rule(p.crush_rule, p.pg_seed(pg), p.kind.width());
            assert_eq!(cold, fresh, "pool {pool} pg {seq} epoch {}", m.epoch);
            assert_eq!(warm, fresh, "hit path, pool {pool} pg {seq} epoch {}", m.epoch);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn cached_placement_matches_uncached_through_epoch_churn(
        steps in proptest::collection::vec(churn_step(), 1..12),
    ) {
        let mut m = testbed();
        m.set_placement_cache_enabled(true);
        // Warm the cache, then churn: every mutation must invalidate
        // exactly the entries whose answers could have changed.
        check_all_pgs(&m);
        for step in steps {
            match step {
                Churn::Reweight { osd, weight } => {
                    let host = host_of(&m, osd);
                    prop_assert!(m.reweight(host, osd, weight).is_some());
                }
                Churn::RemoveAdd { osd } => {
                    let host = host_of(&m, osd);
                    prop_assert!(m.remove_item(host, osd).is_some());
                    prop_assert!(m.add_item(host, osd, WEIGHT_ONE).is_some());
                }
                Churn::SetAlg { osd, alg } => {
                    let host = host_of(&m, osd);
                    prop_assert!(m.set_bucket_alg(host, alg).is_some());
                }
                Churn::DownUp { osd, up } => {
                    if up {
                        m.mark_osd_up(osd);
                    } else {
                        m.mark_osd_down(osd);
                    }
                }
            }
            check_all_pgs(&m);
        }
        // The churn above must actually have exercised the cache.
        let stats = m.placement_cache_stats();
        prop_assert!(stats.hits > 0, "{:?}", stats);
        prop_assert!(stats.misses > 0, "{:?}", stats);
    }

    /// The fault-plane contract: once an OSD dies mid-run, the cache
    /// must never serve a pre-failure acting set again.  `mark_osd_down`
    /// bumps the epoch, so every subsequent lookup either misses (and
    /// re-walks CRUSH, which rejects out devices) or hits an entry
    /// refilled at the post-failure epoch — the victim can appear in no
    /// served set, no matter how warm the cache was before the crash.
    #[test]
    fn dead_osd_never_served_from_cache(
        victim in 0i32..(HOSTS * PER_HOST) as i32,
        lookups_before in 1usize..4,
    ) {
        let mut m = testbed();
        m.set_placement_cache_enabled(true);
        // Warm the cache hard: every PG cached at the healthy epoch,
        // several times over.
        for _ in 0..lookups_before {
            for pool in [1u32, 2] {
                for seq in 0..64 {
                    m.acting_set(PgId { pool, seq });
                }
            }
        }
        let invalidations_before = m.placement_cache_stats().invalidations;
        m.mark_osd_down(victim);
        for pool in [1u32, 2] {
            for seq in 0..64 {
                let pg = PgId { pool, seq };
                let acting = m.acting_set(pg);
                prop_assert!(
                    !acting.contains(&victim),
                    "pool {} pg {} served dead osd {} in {:?}",
                    pool, seq, victim, acting
                );
                // And the served set is exactly the post-failure walk.
                let p = m.pool(pool).unwrap();
                let fresh = m.crush().do_rule(p.crush_rule, p.pg_seed(pg), p.kind.width());
                prop_assert_eq!(acting, fresh);
            }
        }
        prop_assert!(
            m.placement_cache_stats().invalidations > invalidations_before,
            "the death epoch must have flushed the cache"
        );
        // Revival restores the victim's eligibility through the same path.
        m.mark_osd_up(victim);
        check_all_pgs(&m);
    }

    #[test]
    fn disabled_cache_is_equivalent(
        osd in 0i32..(HOSTS * PER_HOST) as i32,
        weight in 1u32..=WEIGHT_ONE,
    ) {
        let mut on = testbed();
        let mut off = testbed();
        on.set_placement_cache_enabled(true);
        off.set_placement_cache_enabled(false);
        for m in [&mut on, &mut off] {
            let host = host_of(m, osd);
            m.reweight(host, osd, weight).unwrap();
        }
        for pool in [1u32, 2] {
            for seq in 0..64 {
                let pg = PgId { pool, seq };
                prop_assert_eq!(on.acting_set(pg), off.acting_set(pg));
            }
        }
        prop_assert_eq!(off.placement_cache_stats().hits, 0, "disabled cache must not hit");
    }
}
