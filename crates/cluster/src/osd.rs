//! OSDs: object storage daemons with service-time profiles.
//!
//! Each OSD stores real objects (integrity is checkable end-to-end) and
//! charges virtual time per operation through a small queueing model:
//! a bank of internal service threads in front of a flash device with
//! distinct sequential/random and read/write characteristics.

use crate::object::{ObjectId, ObjectStore};
use bytes::Bytes;
use deliba_sim::{MultiServer, SimDuration, SimRng, SimTime, Xoshiro256};

/// Service-time parameters of one OSD.
#[derive(Debug, Clone, Copy)]
pub struct OsdProfile {
    /// Fixed software path per op (PG lock, messenger, journal) in ns.
    pub op_overhead_ns: u64,
    /// Media read latency in ns.
    pub read_media_ns: u64,
    /// Media write latency in ns (flash program + WAL).
    pub write_media_ns: u64,
    /// Per-byte read cost in ns (media bandwidth term).
    pub read_ns_per_kib: u64,
    /// Per-byte write cost in ns.
    pub write_ns_per_kib: u64,
    /// Extra latency for a random (non-contiguous) read (cache miss in
    /// the OSD's read path).
    pub random_read_penalty_ns: u64,
    /// Extra latency for a random write (allocator/WAL locality loss).
    pub random_write_penalty_ns: u64,
    /// Internal parallelism (op threads).
    pub parallelism: usize,
    /// Exponential jitter fraction of the mean (0 disables jitter).
    pub jitter_frac: f64,
}

impl OsdProfile {
    /// The lab's OSDs: datacenter SATA/SAS SSDs behind the Ceph OSD
    /// daemon.  Values produce the per-OSD service times the paper's
    /// cluster-level numbers imply.
    pub fn lab_ssd() -> Self {
        OsdProfile {
            op_overhead_ns: 6_000,
            read_media_ns: 5_000,
            write_media_ns: 8_000,
            read_ns_per_kib: 260,
            write_ns_per_kib: 340,
            random_read_penalty_ns: 24_000,
            random_write_penalty_ns: 14_000,
            parallelism: 8,
            jitter_frac: 0.10,
        }
    }

    /// Service time for one op before queueing.
    pub fn service(&self, write: bool, random: bool, bytes: u64, jitter: f64) -> SimDuration {
        let media = if write {
            self.write_media_ns
        } else {
            self.read_media_ns
        };
        let per_kib = if write {
            self.write_ns_per_kib
        } else {
            self.read_ns_per_kib
        };
        let mut ns = self.op_overhead_ns + media + per_kib * bytes.div_ceil(1024);
        if random {
            ns += if write {
                self.random_write_penalty_ns
            } else {
                self.random_read_penalty_ns
            };
        }
        SimDuration::from_nanos(deliba_sim::round_nonneg(ns as f64 * (1.0 + jitter)))
    }

    /// Lower bound on any service time this profile can produce: the
    /// fixed software overhead plus the cheaper media latency (jitter is
    /// nonnegative and every other term only adds).  The cluster's
    /// contribution to the conservative event-queue lookahead.
    pub fn service_floor(&self) -> SimDuration {
        SimDuration::from_nanos(self.op_overhead_ns + self.read_media_ns.min(self.write_media_ns))
    }
}

/// One OSD.
#[derive(Debug)]
pub struct Osd {
    /// OSD id (matches the CRUSH device id).
    pub id: i32,
    /// Which storage server hosts this OSD (network locality).
    pub server: usize,
    store: ObjectStore,
    profile: OsdProfile,
    threads: MultiServer,
    rng: Xoshiro256,
    up: bool,
}

// Window-executor state partition: each OSD (its object store, service
// threads and RNG stream) is mutable state owned by one lane, while the
// service profile is immutable cluster-wide configuration workers may
// share read-only.
impl deliba_sim::LaneState for Osd {}
impl deliba_sim::SharedState for OsdProfile {}

impl Osd {
    /// A fresh OSD.
    pub fn new(id: i32, server: usize, profile: OsdProfile, rng: Xoshiro256) -> Self {
        Osd {
            id,
            server,
            store: ObjectStore::new(),
            threads: MultiServer::new(profile.parallelism),
            profile,
            rng,
            up: true,
        }
    }

    /// Is the OSD serving?
    pub fn is_up(&self) -> bool {
        self.up
    }

    /// The service-time profile.
    pub fn profile(&self) -> &OsdProfile {
        &self.profile
    }

    /// Mark the daemon down (failure injection).
    pub fn set_up(&mut self, up: bool) {
        self.up = up;
    }

    /// Direct store access (scrub, recovery).
    pub fn store(&self) -> &ObjectStore {
        &self.store
    }

    /// Mutable store access (recovery backfill).
    pub fn store_mut(&mut self) -> &mut ObjectStore {
        &mut self.store
    }

    fn jitter(&mut self) -> f64 {
        if self.profile.jitter_frac == 0.0 {
            0.0
        } else {
            self.rng.exp_sample(self.profile.jitter_frac)
        }
    }

    /// Write a full object arriving at `arrive`; returns the ack time.
    /// Returns `None` when the OSD is down.
    pub fn write_object(
        &mut self,
        arrive: SimTime,
        id: ObjectId,
        data: Bytes,
        random: bool,
    ) -> Option<SimTime> {
        if !self.up {
            return None;
        }
        let j = self.jitter();
        let service = self.profile.service(true, random, data.len() as u64, j);
        self.store.write(id, data);
        let (_, fin) = self.threads.begin(arrive, service);
        Some(fin)
    }

    /// Partial object write at `offset`.
    pub fn write_object_at(
        &mut self,
        arrive: SimTime,
        id: ObjectId,
        offset: usize,
        data: &[u8],
        random: bool,
    ) -> Option<SimTime> {
        if !self.up {
            return None;
        }
        let j = self.jitter();
        let service = self.profile.service(true, random, data.len() as u64, j);
        self.store.write_at(id, offset, data);
        let (_, fin) = self.threads.begin(arrive, service);
        Some(fin)
    }

    /// Read `len` bytes at `offset`; returns data and completion time,
    /// or `None` when down.
    pub fn read_object_at(
        &mut self,
        arrive: SimTime,
        id: ObjectId,
        offset: usize,
        len: usize,
        random: bool,
    ) -> Option<(Bytes, SimTime)> {
        let mut out = Vec::new();
        let fin = self.read_object_at_into(arrive, id, offset, len, random, &mut out)?;
        Some((Bytes::from(out), fin))
    }

    /// [`Osd::read_object_at`] into a caller-supplied buffer (resized to
    /// `len`) — identical timing and RNG stream, no allocation.
    pub fn read_object_at_into(
        &mut self,
        arrive: SimTime,
        id: ObjectId,
        offset: usize,
        len: usize,
        random: bool,
        out: &mut Vec<u8>,
    ) -> Option<SimTime> {
        if !self.up {
            return None;
        }
        let j = self.jitter();
        let service = self.profile.service(false, random, len as u64, j);
        self.store.read_at_into(id, offset, len, out);
        let (_, fin) = self.threads.begin(arrive, service);
        Some(fin)
    }

    /// Ops served so far.
    pub fn ops_served(&self) -> u64 {
        self.threads.served()
    }

    /// Utilization over `[0, horizon]`.
    pub fn utilization(&self, horizon: SimTime) -> f64 {
        self.threads.utilization(horizon)
    }

    /// Cumulative busy time across this OSD's service threads.
    pub fn busy_time(&self) -> SimDuration {
        self.threads.busy_time()
    }

    /// Service threads still occupied at `at` — the OSD's instantaneous
    /// queue depth for the telemetry plane.
    pub fn busy_threads_at(&self, at: SimTime) -> u32 {
        self.threads.busy_at(at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn osd() -> Osd {
        let mut p = OsdProfile::lab_ssd();
        p.jitter_frac = 0.0; // deterministic for unit tests
        Osd::new(0, 0, p, Xoshiro256::seed_from_u64(1))
    }

    #[test]
    fn write_then_read_round_trip() {
        let mut o = osd();
        let id = ObjectId::new(0, 7);
        let data = Bytes::from(vec![9u8; 4096]);
        let ack = o.write_object(SimTime::ZERO, id, data.clone(), true).unwrap();
        assert!(ack.as_nanos() > 0);
        let (read, fin) = o.read_object_at(ack, id, 0, 4096, true).unwrap();
        assert_eq!(read, data);
        assert!(fin > ack);
    }

    #[test]
    fn sequential_writes_cost_more_than_sequential_reads() {
        // Media program + WAL makes writes dearer; random *reads* carry
        // the larger locality penalty (cache miss), so the comparison is
        // meaningful only at equal locality.
        let p = OsdProfile::lab_ssd();
        let w = p.service(true, false, 4096, 0.0);
        let r = p.service(false, false, 4096, 0.0);
        assert!(w > r);
        let wr = p.service(true, true, 4096, 0.0);
        let ws = p.service(true, false, 4096, 0.0);
        assert!(wr > ws, "random write penalty applies");
    }

    #[test]
    fn random_penalty_applies() {
        let p = OsdProfile::lab_ssd();
        let rand = p.service(false, true, 4096, 0.0);
        let seq = p.service(false, false, 4096, 0.0);
        assert_eq!(
            (rand - seq).as_nanos(),
            p.random_read_penalty_ns,
            "penalty is additive"
        );
    }

    #[test]
    fn large_io_scales_with_size() {
        let p = OsdProfile::lab_ssd();
        let small = p.service(false, false, 4096, 0.0);
        let large = p.service(false, false, 128 * 1024, 0.0);
        assert!(large.as_nanos() > small.as_nanos() + 100 * p.read_ns_per_kib);
    }

    #[test]
    fn down_osd_refuses_io() {
        let mut o = osd();
        o.set_up(false);
        assert!(o
            .write_object(SimTime::ZERO, ObjectId::new(0, 1), Bytes::new(), true)
            .is_none());
        assert!(o.read_object_at(SimTime::ZERO, ObjectId::new(0, 1), 0, 8, true).is_none());
        o.set_up(true);
        assert!(o
            .write_object(SimTime::ZERO, ObjectId::new(0, 1), Bytes::from_static(b"x"), true)
            .is_some());
    }

    #[test]
    fn parallelism_overlaps_service() {
        let mut o = osd();
        let id = ObjectId::new(0, 1);
        // 8 simultaneous ops with parallelism 8 all finish at the same
        // time; a 9th queues.
        let mut finishes = Vec::new();
        for i in 0..9 {
            let f = o
                .write_object(SimTime::ZERO, ObjectId::new(0, i), Bytes::from(vec![0; 4096]), true)
                .unwrap();
            finishes.push(f);
        }
        assert_eq!(finishes[0], finishes[7]);
        assert!(finishes[8] > finishes[7]);
        let _ = id;
    }

    #[test]
    fn jitter_varies_but_bounded() {
        let mut p = OsdProfile::lab_ssd();
        p.jitter_frac = 0.1;
        let mut o = Osd::new(0, 0, p, Xoshiro256::seed_from_u64(3));
        let mut times: Vec<u64> = Vec::new();
        for i in 0..200 {
            let f = o
                .write_object(SimTime::ZERO, ObjectId::new(0, i), Bytes::from(vec![0; 4096]), true)
                .unwrap();
            times.push(f.as_nanos());
        }
        let min = *times.iter().min().unwrap();
        let max = *times.iter().max().unwrap();
        assert!(max > min, "jitter must vary");
    }
}
