//! RBD: the virtual-disk layer.
//!
//! A RADOS Block Device image is a linear virtual disk striped over
//! fixed-size RADOS objects (default 4 MiB, "order 22").  The UIFD
//! includes "a DeLiBA-K specific Ceph RBD virtual disk driver" (§III-B);
//! this module provides the address math that driver performs: mapping a
//! block-device byte extent onto the object extents beneath it.

use crate::object::ObjectId;

/// Default object size: 4 MiB.
pub const DEFAULT_OBJECT_SIZE: u64 = 4 * 1024 * 1024;

/// One (object, offset, length) fragment of a virtual-disk extent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Extent {
    /// Backing object.
    pub oid: ObjectId,
    /// Offset within the object.
    pub offset: u64,
    /// Fragment length.
    pub len: u64,
}

/// An RBD image.
#[derive(Debug, Clone)]
pub struct RbdImage {
    /// Pool holding the image's objects.
    pub pool: u32,
    /// Image identifier (hashed into object names).
    pub image_id: u64,
    /// Virtual disk size in bytes.
    pub size: u64,
    /// Stripe object size in bytes (power of two).
    pub object_size: u64,
}

impl RbdImage {
    /// An image of `size` bytes with 4 MiB objects.
    pub fn new(pool: u32, image_id: u64, size: u64) -> Self {
        Self::with_object_size(pool, image_id, size, DEFAULT_OBJECT_SIZE)
    }

    /// An image with explicit object size.
    pub fn with_object_size(pool: u32, image_id: u64, size: u64, object_size: u64) -> Self {
        assert!(object_size.is_power_of_two(), "object size must be 2^n");
        assert!(size > 0);
        RbdImage {
            pool,
            image_id,
            size,
            object_size,
        }
    }

    /// Number of backing objects.
    pub fn object_count(&self) -> u64 {
        self.size.div_ceil(self.object_size)
    }

    /// Object name for stripe `index` — a SplitMix-style mix of image id
    /// and index so names spread over the PG space.
    fn object_name(&self, index: u64) -> u64 {
        let mut z = self
            .image_id
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(index);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// The backing object of a virtual-disk byte offset.
    pub fn object_of(&self, offset: u64) -> (ObjectId, u64) {
        assert!(offset < self.size, "offset beyond image");
        let index = offset / self.object_size;
        (
            ObjectId::new(self.pool, self.object_name(index)),
            offset % self.object_size,
        )
    }

    /// Split a virtual extent `[offset, offset + len)` into per-object
    /// fragments (what the RBD driver turns one block request into).
    pub fn extents(&self, offset: u64, len: u64) -> Vec<Extent> {
        assert!(len > 0, "zero-length extent");
        assert!(
            offset + len <= self.size,
            "extent beyond image end: {offset}+{len} > {}",
            self.size
        );
        let mut out = Vec::new();
        let mut cur = offset;
        let mut remaining = len;
        while remaining > 0 {
            let (oid, obj_off) = self.object_of(cur);
            let span = (self.object_size - obj_off).min(remaining);
            out.push(Extent {
                oid,
                offset: obj_off,
                len: span,
            });
            cur += span;
            remaining -= span;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn image() -> RbdImage {
        RbdImage::new(1, 42, 1 << 30) // 1 GiB
    }

    #[test]
    fn object_count() {
        assert_eq!(image().object_count(), 256);
        let odd = RbdImage::new(1, 1, DEFAULT_OBJECT_SIZE + 1);
        assert_eq!(odd.object_count(), 2);
    }

    #[test]
    fn small_io_is_single_extent() {
        let img = image();
        let e = img.extents(4096, 4096);
        assert_eq!(e.len(), 1);
        assert_eq!(e[0].offset, 4096);
        assert_eq!(e[0].len, 4096);
    }

    #[test]
    fn object_boundary_split() {
        let img = image();
        let e = img.extents(DEFAULT_OBJECT_SIZE - 1024, 4096);
        assert_eq!(e.len(), 2);
        assert_eq!(e[0].len, 1024);
        assert_eq!(e[1].offset, 0);
        assert_eq!(e[1].len, 3072);
        assert_ne!(e[0].oid, e[1].oid);
    }

    #[test]
    fn extents_cover_exactly() {
        let img = image();
        for (off, len) in [(0u64, 10u64 << 20), (123_456, 8 << 20), (4096, 512)] {
            let ex = img.extents(off, len);
            let total: u64 = ex.iter().map(|e| e.len).sum();
            assert_eq!(total, len);
            // Contiguity: each fragment ends at an object boundary except
            // the last.
            for f in &ex[..ex.len() - 1] {
                assert_eq!(f.offset + f.len, img.object_size);
            }
        }
    }

    #[test]
    fn names_deterministic_and_spread() {
        let img = image();
        let (a1, _) = img.object_of(0);
        let (a2, _) = img.object_of(0);
        assert_eq!(a1, a2);
        // Adjacent stripes get well-separated names.
        let names: Vec<u64> = (0..64)
            .map(|i| img.object_of(i * DEFAULT_OBJECT_SIZE).0.name)
            .collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 64, "no name collisions");
    }

    #[test]
    fn different_images_do_not_collide() {
        let a = RbdImage::new(1, 7, 1 << 30);
        let b = RbdImage::new(1, 8, 1 << 30);
        let overlap = (0..128u64)
            .filter(|&i| {
                a.object_of(i * DEFAULT_OBJECT_SIZE).0 == b.object_of(i * DEFAULT_OBJECT_SIZE).0
            })
            .count();
        assert_eq!(overlap, 0);
    }

    #[test]
    #[should_panic(expected = "beyond image")]
    fn out_of_range_rejected() {
        image().extents(1 << 30, 1);
    }
}
