//! The assembled cluster: OSDs + network + map + I/O pipelines.
//!
//! Implements the two data paths every DeLiBA evaluation exercises:
//!
//! * **Primary-copy replication** — the client sends the object to the
//!   PG primary; the primary applies it locally and forwards to the
//!   replica OSDs (server-to-server traffic); the write commits when all
//!   copies ack (§III-C: "replication operations … the two methods used
//!   in Ceph for data durability").
//! * **Erasure coding** — the client (in DeLiBA: the FPGA) encodes the
//!   object into `k + m` shards and fans them out to the acting set;
//!   reads gather any `k` shards and reconstruct.
//!
//! Data is real: every write stores bytes in OSD object stores, every
//! read returns them, failure injection yields degraded-but-correct
//! reads, and [`Cluster::scrub`] verifies replica/parity consistency.

use crate::object::ObjectId;
use crate::osd::{Osd, OsdProfile};
use crate::osdmap::OsdMap;
use crate::pool::{PoolConfig, PoolKind};
use bytes::Bytes;
use deliba_crush::rule::Rule;
use deliba_crush::{MapBuilder, RuleStep};
use deliba_ec::ReedSolomon;
use deliba_net::{FrameConfig, Topology};
use deliba_sim::{InstantKind, SimDuration, SimTime, TraceHandle, TraceLayer, Xoshiro256};
use std::collections::{BTreeMap, BTreeSet};

/// Cross-server commit-ack latency (tiny message, switch + stack).
pub(crate) const ACK_CROSS_SERVER: SimDuration = SimDuration(4_000);
/// Same-server OSD-to-OSD forward/ack latency (loopback messenger).
pub(crate) const ACK_SAME_SERVER: SimDuration = SimDuration(2_000);
/// Size of a request/ack control message on the wire.
const CONTROL_BYTES: u64 = 200;
/// Cut-through pipeline latency: the primary begins forwarding to
/// replicas while the client payload is still streaming in, so the
/// forward lags the client send by only the messenger pipeline, not a
/// full store-and-forward hop.
const CUT_THROUGH: SimDuration = SimDuration(2_000);

/// Replicated-pool rule id with OSD-level failure domains (the paper's
/// 2-server testbed cannot host 3 host-disjoint copies).
pub const RULE_REPLICATED_OSD: u32 = 10;
/// EC rule id with OSD-level failure domains.
pub const RULE_EC_OSD: u32 = 11;

/// Result of one object-level operation.
///
/// Besides the commit time, the outcome decomposes the cluster's share
/// of the I/O into three phases that telescope exactly:
/// `net_tx + osd_service + net_rx == complete - now` (the dispatch
/// time the caller passed in).  Fan-out ops (replica forwards, EC
/// shards) attribute by the *latest* arrival/finish among the
/// participating OSDs, so each phase stays non-negative.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IoOutcome {
    /// Commit/visible time at the client.
    pub complete: SimTime,
    /// Logical payload bytes.
    pub bytes: u64,
    /// True when the op proceeded with fewer than `width` healthy
    /// positions.
    pub degraded: bool,
    /// Client→OSD transmit span (wire + store-and-forward in).
    pub net_tx: SimDuration,
    /// OSD service span (media, replication fan-out, commit
    /// gathering).
    pub osd_service: SimDuration,
    /// OSD→client receive span for the response/ack.
    pub net_rx: SimDuration,
}

/// Recovery (backfill) findings.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Objects examined.
    pub objects: u64,
    /// Objects that needed copies/shards re-created.
    pub recovered: u64,
    /// Payload bytes moved between OSDs.
    pub bytes_moved: u64,
    /// Virtual time at which the last backfill write committed.
    pub completed: SimTime,
}

/// Scrub findings.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScrubReport {
    /// Objects inspected.
    pub objects: u64,
    /// Replicas/shards compared.
    pub copies: u64,
    /// Mismatching copies found.
    pub inconsistencies: u64,
}

/// Shard placement record: original object length plus `(osd, shard
/// index)` pairs.
type ShardPlacement = (usize, Vec<(i32, usize)>);

/// The cluster.
pub struct Cluster {
    pub(crate) map: OsdMap,
    pub(crate) osds: Vec<Osd>,
    pub(crate) topology: Topology,
    per_server: usize,
    /// Where each replicated object's copies were written.
    pub(crate) replica_dir: BTreeMap<ObjectId, Vec<i32>>,
    /// Where each EC object's shards were written.
    pub(crate) shard_dir: BTreeMap<ObjectId, ShardPlacement>,
    /// Copies that missed one or more writes while their OSD was down
    /// (or awaiting backfill after a revive).  A `(osd, oid)` entry means
    /// that OSD's stored bytes for the object are behind the authoritative
    /// version: reads route around it and writes skip it until backfill
    /// re-copies the whole object.
    pub(crate) stale: BTreeSet<(i32, ObjectId)>,
    /// Copies known (via checksum verification, modeling BlueStore's
    /// per-extent CRCs) to hold silently corrupted bytes.  Reads route
    /// around them; deep scrub finds and repairs them.
    pub(crate) corrupted: BTreeSet<(i32, ObjectId)>,
    /// Reads that had to route around a stale or corrupt copy.
    pub(crate) bad_copy_skips: u64,
    /// Cluster-dynamics mode (set when the engine arms a recovery
    /// scheduler): partial writes additionally skip stale/missing
    /// copies, leaving them to backfill instead of layering new extents
    /// over holes.  Off by default so legacy runs keep their exact
    /// write fan-out.
    pub(crate) dynamics: bool,
    /// Recycled acting-set buffer: the data-path methods fill it via
    /// [`OsdMap::acting_set_into`] instead of allocating per I/O.
    acting_scratch: Vec<i32>,
    /// Flight recorder (full-depth recording marks each OSD service).
    pub(crate) trace: TraceHandle,
}

impl Cluster {
    /// Build a cluster of `servers × per_server` OSDs with the given
    /// profile.  Pools must be added afterwards (see
    /// [`Cluster::paper_testbed`]).
    pub fn new(servers: usize, per_server: usize, profile: OsdProfile, seed: u64) -> Self {
        Self::with_frames(servers, per_server, profile, seed, FrameConfig::standard())
    }

    /// As [`Cluster::new`] but with explicit Ethernet framing (§IV-B:
    /// the design supports standard 1518 B and jumbo 9018 B frames).
    pub fn with_frames(
        servers: usize,
        per_server: usize,
        profile: OsdProfile,
        seed: u64,
        frames: FrameConfig,
    ) -> Self {
        let mut crush = MapBuilder::new().build(servers, per_server);
        // OSD-level failure-domain rules (domain type 0 = device).
        crush.add_rule(Rule {
            id: RULE_REPLICATED_OSD,
            name: "replicated-osd".into(),
            steps: vec![
                RuleStep::Take(-1),
                RuleStep::ChooseLeaf { num: 0, bucket_type: 0 },
                RuleStep::Emit,
            ],
        });
        crush.add_rule(Rule {
            id: RULE_EC_OSD,
            name: "erasure-osd".into(),
            steps: vec![
                RuleStep::Take(-1),
                RuleStep::ChooseLeaf { num: 0, bucket_type: 0 },
                RuleStep::Emit,
            ],
        });
        let mut root_rng = Xoshiro256::seed_from_u64(seed);
        let osds = (0..servers * per_server)
            .map(|id| Osd::new(id as i32, id / per_server, profile, root_rng.jump()))
            .collect();
        Cluster {
            map: OsdMap::new(crush),
            osds,
            topology: Topology::new(
                servers,
                deliba_net::link::MEASURED_GBPS,
                deliba_net::link::PROPAGATION,
                frames,
            ),
            per_server,
            replica_dir: BTreeMap::new(),
            shard_dir: BTreeMap::new(),
            stale: BTreeSet::new(),
            corrupted: BTreeSet::new(),
            bad_copy_skips: 0,
            dynamics: false,
            acting_scratch: Vec::new(),
            trace: TraceHandle::off(),
        }
    }

    /// Attach a flight-recorder handle, shared with the topology below
    /// (full-depth recording marks each OSD service and link departure;
    /// the lane is the OSD / destination-port id).
    pub fn set_trace(&mut self, trace: TraceHandle) {
        self.topology.set_trace(trace.clone());
        self.trace = trace;
    }

    /// Mark one OSD servicing an op (full depth only; no-op otherwise).
    fn trace_osd_service(&self, at: SimTime, osd: i32, bytes: u64) {
        if self.trace.full() {
            self.trace.instant_lane(
                at,
                TraceLayer::Cluster,
                osd as u32,
                InstantKind::OsdService,
                bytes,
            );
        }
    }

    /// The paper's testbed: 2 servers × 16 OSDs, pool 1 = replicated
    /// (size 3, OSD domains), pool 2 = EC (k 4, m 2, OSD domains).
    pub fn paper_testbed(seed: u64) -> Self {
        Self::paper_testbed_with_frames(seed, FrameConfig::standard())
    }

    /// The paper's testbed with explicit framing (jumbo-MTU studies).
    pub fn paper_testbed_with_frames(seed: u64, frames: FrameConfig) -> Self {
        let mut c = Cluster::with_frames(2, 16, OsdProfile::lab_ssd(), seed, frames);
        c.map.add_pool(PoolConfig::replicated(
            1,
            "rbd-replicated",
            3,
            128,
            RULE_REPLICATED_OSD,
        ));
        c.map
            .add_pool(PoolConfig::erasure(2, "rbd-ec", 4, 2, 128, RULE_EC_OSD));
        c
    }

    /// The cluster map.
    pub fn map(&self) -> &OsdMap {
        &self.map
    }

    /// Network topology (for utilization reporting).
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Which server hosts an OSD.
    pub fn server_of(&self, osd: i32) -> usize {
        osd as usize / self.per_server
    }

    /// Total OSD count.
    pub fn num_osds(&self) -> usize {
        self.osds.len()
    }

    /// Minimum service time any OSD in the cluster can charge (see
    /// [`OsdProfile::service_floor`]) — the cluster's contribution to
    /// the conservative event-queue lookahead.  Re-derive after any
    /// change to the OSD population or profiles.
    pub fn min_service_floor(&self) -> SimDuration {
        self.osds
            .iter()
            .map(|o| o.profile().service_floor())
            .min()
            .unwrap_or(SimDuration::ZERO)
    }

    /// Inject an OSD failure.
    pub fn fail_osd(&mut self, osd: i32) {
        self.osds[osd as usize].set_up(false);
        self.map.mark_osd_down(osd);
    }

    /// Revive an OSD.  Objects that were overwritten while it was down
    /// are in the [`Cluster::stale`] registry: reads route around them
    /// and writes skip them until backfill re-copies each object, so a
    /// revived OSD can never serve bytes it missed.
    pub fn revive_osd(&mut self, osd: i32) {
        self.osds[osd as usize].set_up(true);
        self.map.mark_osd_up(osd);
    }

    /// Is an OSD currently up?
    pub fn osd_is_up(&self, osd: i32) -> bool {
        self.osds[osd as usize].is_up()
    }

    /// Reads that had to route around a stale or corrupt copy so far.
    pub fn bad_copy_skips(&self) -> u64 {
        self.bad_copy_skips
    }

    /// Copies currently registered as stale (awaiting backfill).
    pub fn stale_copies(&self) -> usize {
        self.stale.len()
    }

    /// Copies currently registered as silently corrupted (awaiting deep
    /// scrub).
    pub fn corrupted_copies(&self) -> usize {
        self.corrupted.len()
    }

    /// Arm cluster-dynamics mode (see the `dynamics` field): the engine
    /// sets this when a recovery scheduler is configured.
    pub fn set_dynamics(&mut self, on: bool) {
        self.dynamics = on;
    }

    /// Recovery / backfill pass for a pool (what Ceph's recovery state
    /// machine does after the map changes): for every object whose copy
    /// set no longer matches the current acting set, read a surviving
    /// copy and backfill the missing positions over the cluster network.
    /// Replicated pools copy whole objects; EC pools reconstruct the
    /// missing shards from any `k` survivors.
    pub fn recover(&mut self, now: SimTime, pool_id: u32) -> RecoveryReport {
        let pool = self.pool(pool_id).clone();
        let mut report = RecoveryReport {
            completed: now,
            ..RecoveryReport::default()
        };
        match pool.kind {
            PoolKind::Replicated { .. } => {
                let entries: Vec<(ObjectId, Vec<i32>)> = self
                    .replica_dir
                    .iter()
                    .filter(|(oid, _)| oid.pool == pool_id)
                    .map(|(o, v)| (*o, v.clone()))
                    .collect();
                for (oid, holders) in entries {
                    report.objects += 1;
                    let acting = self.map.acting_set(pool.pg_of(oid));
                    // A healthy source among current holders.
                    let Some(&src) = holders
                        .iter()
                        .find(|&&o| self.osds[o as usize].is_up()
                            && self.osds[o as usize].store().version(oid).is_some())
                    else {
                        continue; // unrecoverable (all copies gone)
                    };
                    let mut new_holders = Vec::new();
                    let mut moved = false;
                    for &dst in &acting {
                        if !self.osds[dst as usize].is_up() {
                            continue;
                        }
                        if self.osds[dst as usize].store().version(oid).is_some() {
                            new_holders.push(dst);
                            continue;
                        }
                        // Backfill src → dst over the cluster network.
                        let data = self.osds[src as usize]
                            .store_mut()
                            .read(oid)
                            .expect("source verified");
                        let len = data.len() as u64;
                        let s_from = self.server_of(src);
                        let s_to = self.server_of(dst);
                        let arrive = if s_from == s_to {
                            now + ACK_SAME_SERVER
                        } else {
                            self.topology.server_to_server(now, s_from, s_to, len)
                        };
                        let fin = self.osds[dst as usize]
                            .write_object(arrive, oid, data, false)
                            .expect("destination is up");
                        report.bytes_moved += len;
                        report.completed = report.completed.max(fin);
                        new_holders.push(dst);
                        moved = true;
                    }
                    if moved {
                        report.recovered += 1;
                    }
                    if !new_holders.is_empty() {
                        self.replica_dir.insert(oid, new_holders);
                    }
                }
            }
            PoolKind::Erasure { k, m } => {
                let rs = ReedSolomon::new(k, m);
                let entries: Vec<(ObjectId, ShardPlacement)> = self
                    .shard_dir
                    .iter()
                    .filter(|(oid, _)| oid.pool == pool_id)
                    .map(|(o, p)| (*o, p.clone()))
                    .collect();
                for (oid, (orig_len, placed)) in entries {
                    report.objects += 1;
                    // Collect surviving shards.
                    let mut slots: Vec<Option<Vec<u8>>> = vec![None; k + m];
                    let mut survivors: Vec<(i32, usize)> = Vec::new();
                    for &(osd, idx) in &placed {
                        if self.osds[osd as usize].is_up() {
                            if let Some(d) = self.osds[osd as usize].store_mut().read(oid) {
                                slots[idx] = Some(d.to_vec());
                                survivors.push((osd, idx));
                            }
                        }
                    }
                    if survivors.len() == k + m {
                        continue; // healthy
                    }
                    if rs.reconstruct(&mut slots).is_err() {
                        continue; // unrecoverable
                    }
                    // Rebuild parity as well.
                    let data_shards: Vec<Vec<u8>> =
                        (0..k).map(|i| slots[i].clone().expect("reconstructed")).collect();
                    let parity = rs.encode_parity(&data_shards);
                    for (pi, p) in parity.into_iter().enumerate() {
                        slots[k + pi] = Some(p);
                    }
                    // Re-place missing shard indices on healthy acting
                    // OSDs not already holding one.
                    let acting = self.map.acting_set(pool.pg_of(oid));
                    let held: Vec<i32> = survivors.iter().map(|&(o, _)| o).collect();
                    let missing_idx: Vec<usize> = (0..k + m)
                        .filter(|i| !survivors.iter().any(|&(_, idx)| idx == *i))
                        .collect();
                    let target_list: Vec<i32> = acting
                        .into_iter()
                        .filter(|o| self.osds[*o as usize].is_up() && !held.contains(o))
                        .collect();
                    let mut targets = target_list.into_iter();
                    let mut new_placed = survivors.clone();
                    let mut moved = false;
                    for idx in missing_idx {
                        let Some(dst) = targets.next() else { break };
                        let shard = slots[idx].clone().expect("filled above");
                        let len = shard.len() as u64;
                        // Reconstruction runs on the client: shards flow
                        // client → destination server.
                        let arrive = self.topology.client_to_server(
                            now,
                            self.server_of(dst),
                            len,
                        );
                        let fin = self.osds[dst as usize]
                            .write_object(arrive, oid, Bytes::from(shard), false)
                            .expect("destination is up");
                        report.bytes_moved += len;
                        report.completed = report.completed.max(fin);
                        new_placed.push((dst, idx));
                        moved = true;
                    }
                    if moved {
                        report.recovered += 1;
                        self.shard_dir.insert(oid, (orig_len, new_placed));
                    }
                }
            }
        }
        report
    }

    fn pool(&self, id: u32) -> &PoolConfig {
        self.map.pool(id).expect("pool exists")
    }

    /// Replicated write of a whole object.  Returns `None` only when no
    /// healthy copy could be written at all.
    pub fn write_replicated(
        &mut self,
        now: SimTime,
        oid: ObjectId,
        data: Bytes,
        random: bool,
    ) -> Option<IoOutcome> {
        let pool = self.pool(oid.pool);
        let PoolKind::Replicated { size } = pool.kind else {
            panic!("write_replicated on a non-replicated pool");
        };
        let pg = pool.pg_of(oid);
        let mut acting = std::mem::take(&mut self.acting_scratch);
        self.map.acting_set_into(pg, &mut acting);
        let healthy: Vec<i32> = acting
            .iter()
            .copied()
            .filter(|&o| self.osds[o as usize].is_up())
            .collect();
        self.acting_scratch = acting;
        let primary = *healthy.first()?;
        let p_server = self.server_of(primary);

        // 1. Client ships the object to the primary.
        let at_primary = self
            .topology
            .client_to_server(now, p_server, data.len() as u64);

        // 2. Primary applies locally and forwards to replicas in
        //    parallel.
        let p_fin = self.osds[primary as usize]
            .write_object(at_primary, oid, data.clone(), random)
            .expect("primary is healthy");
        let mut commit = p_fin;
        for &rep in healthy.iter().skip(1) {
            let r_server = self.server_of(rep);
            let arrive = if r_server == p_server {
                at_primary + ACK_SAME_SERVER
            } else {
                // Cut-through: the forward streams on the cluster network
                // overlapped with the client transfer.
                self.topology
                    .server_to_server(now + CUT_THROUGH, p_server, r_server, data.len() as u64)
                    .max(at_primary)
            };
            let r_fin = self.osds[rep as usize]
                .write_object(arrive, oid, data.clone(), random)
                .expect("replica is healthy");
            let ack = if r_server == p_server {
                r_fin + ACK_SAME_SERVER
            } else {
                r_fin + ACK_CROSS_SERVER
            };
            commit = commit.max(ack);
        }

        // 3. Primary acks the client.
        let done = self
            .topology
            .server_to_client(commit, p_server, CONTROL_BYTES);
        let degraded = healthy.len() < size;
        // A holder that missed this write now has an old version: stale
        // until backfilled.  A full-object replace heals staleness and
        // corruption on every copy that received it.
        if let Some(prev) = self.replica_dir.get(&oid) {
            for &h in prev {
                if !healthy.contains(&h) {
                    self.stale.insert((h, oid));
                }
            }
        }
        for &h in &healthy {
            self.stale.remove(&(h, oid));
            self.corrupted.remove(&(h, oid));
        }
        self.replica_dir.insert(oid, healthy);
        Some(IoOutcome {
            complete: done,
            bytes: data.len() as u64,
            degraded,
            net_tx: at_primary.saturating_since(now),
            osd_service: commit.saturating_since(at_primary),
            net_rx: done.saturating_since(commit),
        })
    }

    /// Replicated partial write of `data` at `offset` within the object
    /// (the RBD driver's common case).  Same commit pipeline as
    /// [`Cluster::write_replicated`].
    pub fn write_replicated_at(
        &mut self,
        now: SimTime,
        oid: ObjectId,
        offset: usize,
        data: &[u8],
        random: bool,
    ) -> Option<IoOutcome> {
        let pool = self.pool(oid.pool);
        let PoolKind::Replicated { size } = pool.kind else {
            panic!("write_replicated_at on a non-replicated pool");
        };
        let pg = pool.pg_of(oid);
        let mut acting = std::mem::take(&mut self.acting_scratch);
        self.map.acting_set_into(pg, &mut acting);
        // In dynamics mode a stale copy (missed writes while its OSD was
        // down) cannot take a partial write — layering new extents over
        // missing ones would corrupt it silently — and neither can an
        // acting member that does not hold the object yet: both wait
        // for backfill to re-copy the whole object.
        let dynamics = self.dynamics;
        let written = dynamics && self.replica_dir.contains_key(&oid);
        let healthy: Vec<i32> = acting
            .iter()
            .copied()
            .filter(|&o| {
                self.osds[o as usize].is_up()
                    && (!dynamics
                        || (!self.stale.contains(&(o, oid))
                            && (!written
                                || self.osds[o as usize].store().version(oid).is_some())))
            })
            .collect();
        self.acting_scratch = acting;
        let primary = *healthy.first()?;
        let p_server = self.server_of(primary);
        let at_primary = self
            .topology
            .client_to_server(now, p_server, data.len() as u64);
        let p_fin = self.osds[primary as usize]
            .write_object_at(at_primary, oid, offset, data, random)
            .expect("primary is healthy");
        self.trace_osd_service(p_fin, primary, data.len() as u64);
        let mut commit = p_fin;
        for &rep in healthy.iter().skip(1) {
            let r_server = self.server_of(rep);
            let arrive = if r_server == p_server {
                at_primary + ACK_SAME_SERVER
            } else {
                // Cut-through: the forward streams on the cluster network
                // overlapped with the client transfer.
                self.topology
                    .server_to_server(now + CUT_THROUGH, p_server, r_server, data.len() as u64)
                    .max(at_primary)
            };
            let r_fin = self.osds[rep as usize]
                .write_object_at(arrive, oid, offset, data, random)
                .expect("replica is healthy");
            self.trace_osd_service(r_fin, rep, data.len() as u64);
            let ack = if r_server == p_server {
                r_fin + ACK_SAME_SERVER
            } else {
                r_fin + ACK_CROSS_SERVER
            };
            commit = commit.max(ack);
        }
        let done = self
            .topology
            .server_to_client(commit, p_server, CONTROL_BYTES);
        let degraded = healthy.len() < size;
        // Holders that missed this partial write fall behind; unlike a
        // full replace, the copies that did receive it are *not* healed
        // of prior staleness/corruption (the write touches one extent).
        if let Some(prev) = self.replica_dir.get(&oid) {
            for &h in prev {
                if !healthy.contains(&h) {
                    self.stale.insert((h, oid));
                }
            }
        }
        self.replica_dir.insert(oid, healthy);
        Some(IoOutcome {
            complete: done,
            bytes: data.len() as u64,
            degraded,
            net_tx: at_primary.saturating_since(now),
            osd_service: commit.saturating_since(at_primary),
            net_rx: done.saturating_since(commit),
        })
    }

    /// Replicated read of `len` bytes at `offset`.  Serves from the
    /// primary, falling back to any surviving copy (degraded read).
    /// Reads of never-written extents return zeros with normal timing
    /// (RBD sparse semantics).
    pub fn read_replicated(
        &mut self,
        now: SimTime,
        oid: ObjectId,
        offset: usize,
        len: usize,
        random: bool,
    ) -> Option<(Bytes, IoOutcome)> {
        let mut out = Vec::new();
        let outcome = self.read_replicated_into(now, oid, offset, len, random, &mut out)?;
        Some((Bytes::from(out), outcome))
    }

    /// [`Cluster::read_replicated`] into a caller-supplied buffer —
    /// identical candidate order, timing and RNG stream; `out` is
    /// resized to `len`.  The engine's closed loop recycles one buffer
    /// across every read this way.
    pub fn read_replicated_into(
        &mut self,
        now: SimTime,
        oid: ObjectId,
        offset: usize,
        len: usize,
        random: bool,
        out: &mut Vec<u8>,
    ) -> Option<IoOutcome> {
        let pg = self.pool(oid.pool).pg_of(oid);
        // Candidates: current acting set first, then the write-time copy
        // holders (covers not-yet-recovered remaps).  The buffer is the
        // cluster's recycled scratch — no allocation on the steady path.
        let mut candidates = std::mem::take(&mut self.acting_scratch);
        self.map.acting_set_into(pg, &mut candidates);
        let written = self.replica_dir.contains_key(&oid);
        if let Some(writers) = self.replica_dir.get(&oid) {
            for &w in writers {
                if !candidates.contains(&w) {
                    candidates.push(w);
                }
            }
        }
        let mut degraded = false;
        let mut outcome = None;
        for (rank, osd) in candidates.iter().copied().enumerate() {
            if !self.osds[osd as usize].is_up() {
                degraded = true;
                continue;
            }
            if written && self.osds[osd as usize].store().version(oid).is_none() {
                // Copy not present here (remapped but not recovered).
                degraded = true;
                continue;
            }
            if self.stale.contains(&(osd, oid)) {
                // This copy missed writes while its OSD was down (a
                // revived OSD awaiting backfill must never serve the
                // bytes it missed): route to an up-to-date copy.
                self.bad_copy_skips += 1;
                degraded = true;
                continue;
            }
            if self.corrupted.contains(&(osd, oid)) {
                // Checksum verification (BlueStore's per-extent CRCs)
                // rejects the copy; deep scrub will repair it.
                self.bad_copy_skips += 1;
                degraded = true;
                continue;
            }
            // For never-written objects the primary serves zeros (RBD
            // sparse read) with ordinary media timing.
            let server = self.server_of(osd);
            let at_osd = self.topology.client_to_server(now, server, CONTROL_BYTES);
            let fin = self.osds[osd as usize]
                .read_object_at_into(at_osd, oid, offset, len, random, out)
                .expect("checked up");
            self.trace_osd_service(fin, osd, len as u64);
            let done = self.topology.server_to_client(fin, server, len as u64);
            outcome = Some(IoOutcome {
                complete: done,
                bytes: len as u64,
                degraded: written && (degraded || rank > 0),
                net_tx: at_osd.saturating_since(now),
                osd_service: fin.saturating_since(at_osd),
                net_rx: done.saturating_since(fin),
            });
            break;
        }
        self.acting_scratch = candidates;
        outcome
    }

    /// EC sparse read: the object was never written, so the client
    /// probes the acting set and zero-fills — charged as `k` short
    /// control round trips plus media checks, matching the ENOENT fast
    /// path.
    pub fn read_ec_sparse(
        &mut self,
        now: SimTime,
        oid: ObjectId,
        len: usize,
        random: bool,
    ) -> Option<(Bytes, IoOutcome)> {
        let mut out = Vec::new();
        let outcome = self.read_ec_sparse_into(now, oid, len, random, &mut out)?;
        Some((Bytes::from(out), outcome))
    }

    /// [`Cluster::read_ec_sparse`] into a caller-supplied buffer (`out`
    /// ends up `len` zero bytes) — identical timing and RNG stream, no
    /// allocation beyond the buffer's own growth.
    pub fn read_ec_sparse_into(
        &mut self,
        now: SimTime,
        oid: ObjectId,
        len: usize,
        random: bool,
        out: &mut Vec<u8>,
    ) -> Option<IoOutcome> {
        let pool = self.pool(oid.pool);
        let PoolKind::Erasure { k, .. } = pool.kind else {
            panic!("read_ec_sparse on a non-EC pool");
        };
        let pg = pool.pg_of(oid);
        let mut acting = std::mem::take(&mut self.acting_scratch);
        self.map.acting_set_into(pg, &mut acting);
        let shard_len = len.div_ceil(k);
        let mut commit = now;
        let mut last_arrive = now;
        let mut last_fin = now;
        let mut fetched = 0;
        for &osd in &acting {
            if fetched >= k {
                break;
            }
            if !self.osds[osd as usize].is_up() {
                continue;
            }
            let server = self.server_of(osd);
            let at_osd = self.topology.client_to_server(now, server, CONTROL_BYTES);
            // The shard probe's payload is discarded (ENOENT fast path);
            // `out` doubles as the scratch target, then zero-fills below.
            let fin = self.osds[osd as usize]
                .read_object_at_into(at_osd, oid, 0, shard_len, random, out)
                .expect("checked up");
            self.trace_osd_service(fin, osd, shard_len as u64);
            let done = self
                .topology
                .server_to_client(fin, server, shard_len as u64);
            commit = commit.max(done);
            last_arrive = last_arrive.max(at_osd);
            last_fin = last_fin.max(fin);
            fetched += 1;
        }
        self.acting_scratch = acting;
        if fetched < k {
            return None;
        }
        last_fin = last_fin.max(last_arrive);
        out.clear();
        out.resize(len, 0);
        Some(IoOutcome {
            complete: commit,
            bytes: len as u64,
            degraded: false,
            net_tx: last_arrive.saturating_since(now),
            osd_service: last_fin.saturating_since(last_arrive),
            net_rx: commit.saturating_since(last_fin),
        })
    }

    /// Has an EC object been written (shards recorded)?
    pub fn ec_object_exists(&self, oid: ObjectId) -> bool {
        self.shard_dir.contains_key(&oid)
    }

    /// EC write: the caller (the DeLiBA client — in hardware, the RS
    /// accelerator) provides the `k + m` shards; the cluster fans them
    /// out to the acting set.  Succeeds while at least `k` shards land.
    pub fn write_ec_shards(
        &mut self,
        now: SimTime,
        oid: ObjectId,
        original_len: usize,
        shards: Vec<Vec<u8>>,
        random: bool,
    ) -> Option<IoOutcome> {
        let pool = self.pool(oid.pool);
        let PoolKind::Erasure { k, m } = pool.kind else {
            panic!("write_ec_shards on a non-EC pool");
        };
        assert_eq!(shards.len(), k + m, "wrong shard count");
        let pg = pool.pg_of(oid);
        let mut acting = std::mem::take(&mut self.acting_scratch);
        self.map.acting_set_into(pg, &mut acting);
        let mut placed: Vec<(i32, usize)> = Vec::new();
        let mut commit = now;
        let mut last_arrive = now;
        let mut last_fin = now;
        let mut written = 0usize;
        for (idx, shard) in shards.into_iter().enumerate() {
            let Some(&osd) = acting.get(idx) else {
                continue;
            };
            if !self.osds[osd as usize].is_up() {
                continue;
            }
            let server = self.server_of(osd);
            let arrive = self
                .topology
                .client_to_server(now, server, shard.len() as u64);
            let shard_bytes = shard.len() as u64;
            let fin = self.osds[osd as usize]
                .write_object(arrive, oid, Bytes::from(shard), random)
                .expect("checked up");
            self.trace_osd_service(fin, osd, shard_bytes);
            let ack = self.topology.server_to_client(fin, server, CONTROL_BYTES);
            commit = commit.max(ack);
            last_arrive = last_arrive.max(arrive);
            last_fin = last_fin.max(fin);
            // A full shard replace heals prior staleness/corruption.
            self.stale.remove(&(osd, oid));
            self.corrupted.remove(&(osd, oid));
            placed.push((osd, idx));
            written += 1;
        }
        self.acting_scratch = acting;
        if written < k {
            return None; // insufficient durability — op fails
        }
        let degraded = written < k + m;
        self.shard_dir.insert(oid, (original_len, placed));
        last_fin = last_fin.max(last_arrive);
        Some(IoOutcome {
            complete: commit,
            bytes: original_len as u64,
            degraded,
            net_tx: last_arrive.saturating_since(now),
            osd_service: last_fin.saturating_since(last_arrive),
            net_rx: commit.saturating_since(last_fin),
        })
    }

    /// EC read: gather any `k` shards and reconstruct the object.
    /// Returns the full object payload.
    pub fn read_ec(
        &mut self,
        now: SimTime,
        oid: ObjectId,
        random: bool,
    ) -> Option<(Bytes, IoOutcome)> {
        let mut out = Vec::new();
        let outcome = self.read_ec_into(now, oid, random, &mut out)?;
        Some((Bytes::from(out), outcome))
    }

    /// [`Cluster::read_ec`] with the reconstructed payload delivered into
    /// a caller-supplied buffer — identical gather order, timing and RNG
    /// stream.
    pub fn read_ec_into(
        &mut self,
        now: SimTime,
        oid: ObjectId,
        random: bool,
        out: &mut Vec<u8>,
    ) -> Option<IoOutcome> {
        let PoolKind::Erasure { k, m } = self.pool(oid.pool).kind else {
            panic!("read_ec on a non-EC pool");
        };
        let (original_len, placed) = self.shard_dir.get(&oid)?.clone();
        let mut slots: Vec<Option<Vec<u8>>> = vec![None; k + m];
        let mut commit = now;
        let mut last_arrive = now;
        let mut last_fin = now;
        let mut fetched = 0usize;
        let mut skipped_any = false;
        for (osd, idx) in placed {
            if fetched >= k {
                break;
            }
            if !self.osds[osd as usize].is_up() {
                skipped_any = true;
                continue;
            }
            if self.corrupted.contains(&(osd, oid)) {
                // A checksum-rejected shard counts as missing; the
                // decoder reconstructs from the surviving k.
                self.bad_copy_skips += 1;
                skipped_any = true;
                continue;
            }
            let server = self.server_of(osd);
            let Some(shard_len) = self.osds[osd as usize].store().peek_len(oid) else {
                skipped_any = true;
                continue;
            };
            let at_osd = self.topology.client_to_server(now, server, CONTROL_BYTES);
            let mut data = Vec::new();
            let fin = self.osds[osd as usize]
                .read_object_at_into(at_osd, oid, 0, shard_len, random, &mut data)
                .expect("checked up");
            self.trace_osd_service(fin, osd, data.len() as u64);
            let done = self
                .topology
                .server_to_client(fin, server, data.len() as u64);
            commit = commit.max(done);
            last_arrive = last_arrive.max(at_osd);
            last_fin = last_fin.max(fin);
            slots[idx] = Some(data);
            fetched += 1;
        }
        if fetched < k {
            return None;
        }
        let rs = ReedSolomon::new(k, m);
        rs.reconstruct(&mut slots).ok()?;
        *out = rs.join(&slots, original_len);
        last_fin = last_fin.max(last_arrive);
        Some(IoOutcome {
            complete: commit,
            bytes: original_len as u64,
            degraded: skipped_any,
            net_tx: last_arrive.saturating_since(now),
            osd_service: last_fin.saturating_since(last_arrive),
            net_rx: commit.saturating_since(last_fin),
        })
    }

    /// Deep scrub of a pool: byte-compare every replicated copy, and for
    /// EC objects re-encode the data shards and compare the stored
    /// parity.
    pub fn scrub(&mut self, pool_id: u32) -> ScrubReport {
        let mut report = ScrubReport::default();
        let pool = self.pool(pool_id).clone();
        match pool.kind {
            PoolKind::Replicated { .. } => {
                let entries: Vec<(ObjectId, Vec<i32>)> = self
                    .replica_dir
                    .iter()
                    .filter(|(oid, _)| oid.pool == pool_id)
                    .map(|(o, v)| (*o, v.clone()))
                    .collect();
                for (oid, holders) in entries {
                    report.objects += 1;
                    let mut reference: Option<Bytes> = None;
                    for osd in holders {
                        if let Some(data) =
                            self.osds[osd as usize].store_mut().read(oid)
                        {
                            report.copies += 1;
                            match &reference {
                                None => reference = Some(data),
                                Some(r) => {
                                    if *r != data {
                                        report.inconsistencies += 1;
                                    }
                                }
                            }
                        }
                    }
                }
            }
            PoolKind::Erasure { k, m } => {
                let rs = ReedSolomon::new(k, m);
                let entries: Vec<(ObjectId, Vec<(i32, usize)>)> = self
                    .shard_dir
                    .iter()
                    .filter(|(oid, _)| oid.pool == pool_id)
                    .map(|(o, (_, v))| (*o, v.clone()))
                    .collect();
                for (oid, placed) in entries {
                    report.objects += 1;
                    let mut slots: Vec<Option<Vec<u8>>> = vec![None; k + m];
                    for (osd, idx) in &placed {
                        if let Some(d) = self.osds[*osd as usize].store_mut().read(oid) {
                            report.copies += 1;
                            slots[*idx] = Some(d.to_vec());
                        }
                    }
                    // Need all data shards to re-encode parity.
                    if slots.iter().take(k).all(|s| s.is_some()) {
                        let data_shards: Vec<Vec<u8>> =
                            (0..k).map(|i| slots[i].clone().unwrap()).collect();
                        let parity = rs.encode_parity(&data_shards);
                        for (pi, p) in parity.iter().enumerate() {
                            if let Some(stored) = &slots[k + pi] {
                                if stored != p {
                                    report.inconsistencies += 1;
                                }
                            }
                        }
                    }
                }
            }
        }
        report
    }

    /// Max and mean OSD utilization over `[0, horizon]` — bottleneck
    /// diagnosis for saturation runs.
    pub fn osd_utilization(&self, horizon: deliba_sim::SimTime) -> (f64, f64) {
        let utils: Vec<f64> = self.osds.iter().map(|o| o.utilization(horizon)).collect();
        let max = utils.iter().cloned().fold(0.0, f64::max);
        let mean = utils.iter().sum::<f64>() / utils.len() as f64;
        (max, mean)
    }

    /// Per-OSD op counts (load-balance diagnosis).
    pub fn osd_ops(&self) -> Vec<u64> {
        self.osds.iter().map(|o| o.ops_served()).collect()
    }

    /// Per-OSD cumulative busy time — the telemetry plane differences
    /// consecutive samples of this for per-window busy fractions.
    pub fn osd_busy_times(&self) -> Vec<deliba_sim::SimDuration> {
        self.osds.iter().map(|o| o.busy_time()).collect()
    }

    /// Per-OSD service threads still occupied at `at` (instantaneous
    /// OSD queue depths).
    pub fn osd_busy_threads_at(&self, at: deliba_sim::SimTime) -> Vec<u32> {
        self.osds.iter().map(|o| o.busy_threads_at(at)).collect()
    }

    /// Repair pass after a scrub: for replicated pools, rewrite divergent
    /// copies from the majority version (primary breaks ties — Ceph's
    /// "authoritative copy"); for EC pools, recompute parity from the
    /// data shards and rewrite mismatches.  Returns copies rewritten.
    pub fn repair(&mut self, pool_id: u32) -> u64 {
        let pool = self.pool(pool_id).clone();
        let mut fixed = 0;
        match pool.kind {
            PoolKind::Replicated { .. } => {
                let entries: Vec<(ObjectId, Vec<i32>)> = self
                    .replica_dir
                    .iter()
                    .filter(|(oid, _)| oid.pool == pool_id)
                    .map(|(o, v)| (*o, v.clone()))
                    .collect();
                for (oid, holders) in entries {
                    let mut copies: Vec<(i32, Bytes)> = Vec::new();
                    for &osd in &holders {
                        if let Some(d) = self.osds[osd as usize].store_mut().read(oid) {
                            copies.push((osd, d));
                        }
                    }
                    if copies.len() < 2 {
                        continue;
                    }
                    // Majority vote; ties go to the first holder (the
                    // write-time primary).
                    let mut best: Option<(&Bytes, usize)> = None;
                    for (_, d) in &copies {
                        let votes = copies.iter().filter(|(_, x)| x == d).count();
                        if best.map(|(_, v)| votes > v).unwrap_or(true) {
                            best = Some((d, votes));
                        }
                    }
                    let authoritative = best.expect("non-empty").0.clone();
                    for (osd, d) in copies {
                        if d != authoritative {
                            self.osds[osd as usize]
                                .store_mut()
                                .write(oid, authoritative.clone());
                            fixed += 1;
                        }
                    }
                }
            }
            PoolKind::Erasure { k, m } => {
                let rs = ReedSolomon::new(k, m);
                let entries: Vec<(ObjectId, Vec<(i32, usize)>)> = self
                    .shard_dir
                    .iter()
                    .filter(|(oid, _)| oid.pool == pool_id)
                    .map(|(o, (_, v))| (*o, v.clone()))
                    .collect();
                for (oid, placed) in entries {
                    let mut slots: Vec<Option<Vec<u8>>> = vec![None; k + m];
                    let mut holders: Vec<Option<i32>> = vec![None; k + m];
                    for &(osd, idx) in &placed {
                        if let Some(d) = self.osds[osd as usize].store_mut().read(oid) {
                            slots[idx] = Some(d.to_vec());
                            holders[idx] = Some(osd);
                        }
                    }
                    if !(0..k).all(|i| slots[i].is_some()) {
                        continue; // data shards missing → recovery's job
                    }
                    let data_shards: Vec<Vec<u8>> =
                        (0..k).map(|i| slots[i].clone().unwrap()).collect();
                    let parity = rs.encode_parity(&data_shards);
                    for (pi, p) in parity.into_iter().enumerate() {
                        if let (Some(stored), Some(osd)) = (&slots[k + pi], holders[k + pi]) {
                            if stored != &p {
                                self.osds[osd as usize]
                                    .store_mut()
                                    .write(oid, Bytes::from(p));
                                fixed += 1;
                            }
                        }
                    }
                }
            }
        }
        fixed
    }

    /// Corrupt one stored copy (test hook for scrub).
    pub fn corrupt_object(&mut self, osd: i32, oid: ObjectId) -> bool {
        let store = self.osds[osd as usize].store_mut();
        if let Some(data) = store.read(oid) {
            let mut v = data.to_vec();
            if v.is_empty() {
                v.push(0xFF);
            } else {
                v[0] ^= 0xFF;
            }
            store.write(oid, Bytes::from(v));
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oid_rep(name: u64) -> ObjectId {
        ObjectId::new(1, name)
    }
    fn oid_ec(name: u64) -> ObjectId {
        ObjectId::new(2, name)
    }

    fn payload(len: usize, tag: u8) -> Bytes {
        Bytes::from((0..len).map(|i| (i as u8).wrapping_add(tag)).collect::<Vec<u8>>())
    }

    #[test]
    fn replicated_write_read_integrity() {
        let mut c = Cluster::paper_testbed(1);
        let data = payload(4096, 3);
        let w = c
            .write_replicated(SimTime::ZERO, oid_rep(1), data.clone(), true)
            .unwrap();
        assert!(!w.degraded);
        assert!(w.complete.as_nanos() > 0);
        let (read, r) = c
            .read_replicated(w.complete, oid_rep(1), 0, 4096, true)
            .unwrap();
        assert_eq!(read, data);
        assert!(!r.degraded);
        assert!(r.complete > w.complete);
    }

    #[test]
    fn replication_stores_three_copies() {
        let mut c = Cluster::paper_testbed(2);
        c.write_replicated(SimTime::ZERO, oid_rep(5), payload(1024, 1), true)
            .unwrap();
        let holders = c.replica_dir.get(&oid_rep(5)).unwrap().clone();
        assert_eq!(holders.len(), 3);
        for osd in holders {
            assert!(c.osds[osd as usize].store().version(oid_rep(5)).is_some());
        }
    }

    #[test]
    fn write_latency_scales_with_size() {
        let mut c = Cluster::paper_testbed(3);
        let small = c
            .write_replicated(SimTime::ZERO, oid_rep(1), payload(4096, 0), true)
            .unwrap();
        let mut c2 = Cluster::paper_testbed(3);
        let large = c2
            .write_replicated(SimTime::ZERO, oid_rep(1), payload(128 * 1024, 0), true)
            .unwrap();
        assert!(large.complete > small.complete);
    }

    #[test]
    fn degraded_read_after_primary_failure() {
        let mut c = Cluster::paper_testbed(4);
        let data = payload(8192, 9);
        let w = c
            .write_replicated(SimTime::ZERO, oid_rep(9), data.clone(), true)
            .unwrap();
        let primary = c.replica_dir.get(&oid_rep(9)).unwrap()[0];
        c.fail_osd(primary);
        let (read, r) = c
            .read_replicated(w.complete, oid_rep(9), 0, 8192, true)
            .unwrap();
        assert_eq!(read, data, "degraded read returns correct data");
        assert!(r.degraded);
    }

    #[test]
    fn degraded_write_with_failed_replica() {
        let mut c = Cluster::paper_testbed(5);
        // Fail one replica of the target PG before writing.
        let pool = c.map.pool(1).unwrap().clone();
        let acting = c.map.acting_set(pool.pg_of(oid_rep(77)));
        c.osds[acting[1] as usize].set_up(false); // daemon dead, map not yet updated
        let w = c
            .write_replicated(SimTime::ZERO, oid_rep(77), payload(4096, 2), true)
            .unwrap();
        assert!(w.degraded, "write proceeded with 2/3 copies");
        let (read, _) = c
            .read_replicated(w.complete, oid_rep(77), 0, 4096, true)
            .unwrap();
        assert_eq!(read, payload(4096, 2));
    }

    #[test]
    fn outcome_phases_telescope_to_completion() {
        // net_tx + osd_service + net_rx must equal the cluster's whole
        // share of the I/O for every dispatch path, including fan-out.
        let check = |label: &str, start: SimTime, o: &IoOutcome| {
            assert_eq!(
                o.net_tx + o.osd_service + o.net_rx,
                o.complete.saturating_since(start),
                "{label}: phases must telescope"
            );
            assert!(o.osd_service > SimDuration::ZERO, "{label}: media time");
        };

        let mut c = Cluster::paper_testbed(11);
        let data = payload(8192, 6);
        let w = c
            .write_replicated(SimTime::ZERO, oid_rep(21), data.clone(), true)
            .unwrap();
        check("write_replicated", SimTime::ZERO, &w);
        let (_, r) = c
            .read_replicated(w.complete, oid_rep(21), 0, 8192, true)
            .unwrap();
        check("read_replicated", w.complete, &r);
        let pw = c
            .write_replicated_at(r.complete, oid_rep(21), 1024, &data[..2048], true)
            .unwrap();
        check("write_replicated_at", r.complete, &pw);

        let shards = ReedSolomon::new(4, 2).encode(&data);
        let ew = c
            .write_ec_shards(pw.complete, oid_ec(21), data.len(), shards, true)
            .unwrap();
        check("write_ec_shards", pw.complete, &ew);
        let (_, er) = c.read_ec(ew.complete, oid_ec(21), true).unwrap();
        check("read_ec", ew.complete, &er);
        let (_, es) = c
            .read_ec_sparse(er.complete, oid_ec(99), 8192, true)
            .unwrap();
        check("read_ec_sparse", er.complete, &es);
    }

    #[test]
    fn ec_write_read_round_trip() {
        let mut c = Cluster::paper_testbed(6);
        let data = payload(16 * 1024, 4);
        let rs = ReedSolomon::new(4, 2);
        let shards = rs.encode(&data);
        let w = c
            .write_ec_shards(SimTime::ZERO, oid_ec(1), data.len(), shards, true)
            .unwrap();
        assert!(!w.degraded);
        let (read, r) = c.read_ec(w.complete, oid_ec(1), true).unwrap();
        assert_eq!(read, data);
        assert!(!r.degraded);
    }

    #[test]
    fn ec_survives_two_failures() {
        let mut c = Cluster::paper_testbed(7);
        let data = payload(16 * 1024, 5);
        let shards = ReedSolomon::new(4, 2).encode(&data);
        let w = c
            .write_ec_shards(SimTime::ZERO, oid_ec(2), data.len(), shards, true)
            .unwrap();
        let placed = c.shard_dir.get(&oid_ec(2)).unwrap().1.clone();
        // Kill two shard holders.
        c.fail_osd(placed[0].0);
        c.fail_osd(placed[3].0);
        let (read, r) = c.read_ec(w.complete, oid_ec(2), true).unwrap();
        assert_eq!(read, data, "reconstruction recovers the object");
        assert!(r.degraded);
        // A third failure makes it unreadable.
        c.fail_osd(placed[1].0);
        assert!(c.read_ec(w.complete, oid_ec(2), true).is_none());
    }

    #[test]
    fn ec_write_fails_below_k() {
        let mut c = Cluster::paper_testbed(8);
        let data = payload(4096, 1);
        let shards = ReedSolomon::new(4, 2).encode(&data);
        let pool = c.map.pool(2).unwrap().clone();
        let acting = c.map.acting_set(pool.pg_of(oid_ec(3)));
        for &osd in acting.iter().take(3) {
            c.osds[osd as usize].set_up(false);
        }
        assert!(c
            .write_ec_shards(SimTime::ZERO, oid_ec(3), data.len(), shards, true)
            .is_none());
    }

    #[test]
    fn ec_moves_less_client_data_than_replication() {
        // Replication ships 1× data client→cluster plus 2× server-side;
        // EC ships 1.5× client→cluster.  Check the client TX accounting.
        let data_len = 64 * 1024;
        let mut rep = Cluster::paper_testbed(9);
        rep.write_replicated(SimTime::ZERO, oid_rep(1), payload(data_len, 0), false)
            .unwrap();
        let mut ec = Cluster::paper_testbed(9);
        let shards = ReedSolomon::new(4, 2).encode(&payload(data_len, 0));
        ec.write_ec_shards(SimTime::ZERO, oid_ec(1), data_len, shards, false)
            .unwrap();
        // EC client traffic ≈ 1.5×, replication ≈ 1× — EC write moves
        // *more* through the client port.
        // (Informational shape check via completion times is too noisy;
        // assert on the directory contents instead.)
        assert_eq!(ec.shard_dir.get(&oid_ec(1)).unwrap().1.len(), 6);
        assert_eq!(rep.replica_dir.get(&oid_rep(1)).unwrap().len(), 3);
    }

    #[test]
    fn scrub_clean_and_corrupted() {
        let mut c = Cluster::paper_testbed(10);
        for i in 0..10 {
            c.write_replicated(SimTime::ZERO, oid_rep(i), payload(2048, i as u8), true)
                .unwrap();
        }
        let clean = c.scrub(1);
        assert_eq!(clean.objects, 10);
        assert_eq!(clean.copies, 30);
        assert_eq!(clean.inconsistencies, 0);

        let victim_holders = c.replica_dir.get(&oid_rep(4)).unwrap().clone();
        assert!(c.corrupt_object(victim_holders[1], oid_rep(4)));
        let dirty = c.scrub(1);
        assert_eq!(dirty.inconsistencies, 1);
    }

    #[test]
    fn scrub_ec_parity() {
        let mut c = Cluster::paper_testbed(11);
        let data = payload(8192, 7);
        let shards = ReedSolomon::new(4, 2).encode(&data);
        c.write_ec_shards(SimTime::ZERO, oid_ec(5), data.len(), shards, true)
            .unwrap();
        assert_eq!(c.scrub(2).inconsistencies, 0);
        // Corrupt a parity shard.
        let placed = c.shard_dir.get(&oid_ec(5)).unwrap().1.clone();
        let parity_holder = placed.iter().find(|&&(_, idx)| idx >= 4).unwrap().0;
        c.corrupt_object(parity_holder, oid_ec(5));
        assert_eq!(c.scrub(2).inconsistencies, 1);
    }

    #[test]
    fn revived_osd_does_not_serve_stale_bytes() {
        // Regression: an OSD that missed writes while down must not
        // serve its stale copy after revival — reads route to an
        // up-to-date copy until backfill heals it.
        let mut c = Cluster::paper_testbed(21);
        let oid = oid_rep(55);
        c.write_replicated(SimTime::ZERO, oid, payload(4096, 1), true)
            .unwrap();
        let primary = c.replica_dir.get(&oid).unwrap()[0];
        c.fail_osd(primary);
        let w = c
            .write_replicated(SimTime::from_nanos(1000), oid, payload(4096, 2), true)
            .unwrap();
        c.revive_osd(primary);
        assert!(c.stale.contains(&(primary, oid)), "missed write marks the copy stale");
        let (read, r) = c.read_replicated(w.complete, oid, 0, 4096, true).unwrap();
        assert_eq!(read, payload(4096, 2), "stale copy must not be served");
        assert!(r.degraded, "routing around a stale copy is a degraded read");
        assert!(c.bad_copy_skips() > 0);
        // A later full-object write heals the copy: no longer stale.
        let w2 = c
            .write_replicated(w.complete, oid, payload(4096, 3), true)
            .unwrap();
        assert!(!c.stale.contains(&(primary, oid)));
        let (read2, r2) = c.read_replicated(w2.complete, oid, 0, 4096, true).unwrap();
        assert_eq!(read2, payload(4096, 3));
        assert!(!r2.degraded);
    }

    #[test]
    fn corrupt_registered_copy_is_skipped_on_read() {
        let mut c = Cluster::paper_testbed(22);
        let oid = oid_rep(8);
        let data = payload(4096, 9);
        let w = c
            .write_replicated(SimTime::ZERO, oid, data.clone(), true)
            .unwrap();
        let primary = c.replica_dir.get(&oid).unwrap()[0];
        assert!(c.corrupt_object(primary, oid));
        c.corrupted.insert((primary, oid));
        let (read, r) = c.read_replicated(w.complete, oid, 0, 4096, true).unwrap();
        assert_eq!(read, data, "checksum-rejected copy must not be served");
        assert!(r.degraded);

        // EC: a corrupt shard counts as missing; reconstruction from the
        // surviving shards still returns the exact bytes.
        let eid = oid_ec(8);
        let shards = ReedSolomon::new(4, 2).encode(&data);
        let ew = c
            .write_ec_shards(w.complete, eid, data.len(), shards, true)
            .unwrap();
        let (osd0, _) = c.shard_dir.get(&eid).unwrap().1[0];
        assert!(c.corrupt_object(osd0, eid));
        c.corrupted.insert((osd0, eid));
        let (eread, er) = c.read_ec(ew.complete, eid, true).unwrap();
        assert_eq!(eread, data);
        assert!(er.degraded);
    }

    #[test]
    fn concurrent_writes_queue_on_network() {
        let mut c = Cluster::paper_testbed(12);
        let mut completions = Vec::new();
        for i in 0..16 {
            let w = c
                .write_replicated(SimTime::ZERO, oid_rep(100 + i), payload(128 * 1024, 0), false)
                .unwrap();
            completions.push(w.complete);
        }
        // Later submissions finish later: client port serialization.
        assert!(completions.windows(2).any(|w| w[1] > w[0]));
        let span = completions.iter().max().unwrap().as_nanos()
            - completions.iter().min().unwrap().as_nanos();
        assert!(span > 100_000, "16×128 KiB must spread out on a 10G port");
    }
}
