//! The OSDMap: cluster map epochs, CRUSH, pool table and OSD states.

use crate::pool::{PgId, PoolConfig};
use deliba_crush::{CrushMap, DeviceId};
use std::collections::BTreeMap;

/// The authoritative cluster map (what Ceph monitors distribute).
#[derive(Debug, Clone)]
pub struct OsdMap {
    /// Map epoch, bumped on every mutation.
    pub epoch: u64,
    crush: CrushMap,
    pools: BTreeMap<u32, PoolConfig>,
}

impl OsdMap {
    /// Wrap a CRUSH map at epoch 1.
    pub fn new(crush: CrushMap) -> Self {
        OsdMap {
            epoch: 1,
            crush,
            pools: BTreeMap::new(),
        }
    }

    /// The CRUSH map.
    pub fn crush(&self) -> &CrushMap {
        &self.crush
    }

    /// Register a pool.
    pub fn add_pool(&mut self, pool: PoolConfig) {
        self.pools.insert(pool.id, pool);
        self.epoch += 1;
    }

    /// Look up a pool.
    pub fn pool(&self, id: u32) -> Option<&PoolConfig> {
        self.pools.get(&id)
    }

    /// All pool ids.
    pub fn pool_ids(&self) -> Vec<u32> {
        self.pools.keys().copied().collect()
    }

    /// Mark an OSD down/out: placement immediately avoids it.
    pub fn mark_osd_down(&mut self, osd: DeviceId) {
        self.crush.mark_out(osd);
        self.epoch += 1;
    }

    /// Return an OSD to service.
    pub fn mark_osd_up(&mut self, osd: DeviceId) {
        self.crush.mark_in(osd);
        self.epoch += 1;
    }

    /// Is the OSD out?
    pub fn is_osd_down(&self, osd: DeviceId) -> bool {
        self.crush.is_out(osd)
    }

    /// The acting set of a PG: the OSDs serving it, primary first.
    pub fn acting_set(&self, pg: PgId) -> Vec<DeviceId> {
        let Some(pool) = self.pools.get(&pg.pool) else {
            return Vec::new();
        };
        let seed = pool.pg_seed(pg);
        self.crush
            .do_rule(pool.crush_rule, seed, pool.kind.width())
    }

    /// Primary OSD of a PG.
    pub fn primary(&self, pg: PgId) -> Option<DeviceId> {
        self.acting_set(pg).first().copied()
    }

    /// Total devices in the map.
    pub fn num_osds(&self) -> usize {
        self.crush.num_devices()
    }

    /// Fraction of PGs of `pool` whose acting set changed between this
    /// map and `other` — the rebalance measure DFX reacts to.
    pub fn remapped_fraction(&self, other: &OsdMap, pool: u32) -> f64 {
        let Some(p) = self.pools.get(&pool) else {
            return 0.0;
        };
        let total = p.pg_num;
        let mut moved = 0;
        for seq in 0..total {
            let pg = PgId { pool, seq };
            if self.acting_set(pg) != other.acting_set(pg) {
                moved += 1;
            }
        }
        moved as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deliba_crush::MapBuilder;

    fn map() -> OsdMap {
        let mut m = OsdMap::new(MapBuilder::new().build(8, 4));
        m.add_pool(PoolConfig::replicated(1, "rbd", 3, 128, 0));
        m.add_pool(PoolConfig::erasure(2, "ec", 4, 2, 128, 1));
        m
    }

    #[test]
    fn epochs_bump_on_mutation() {
        let mut m = map();
        let e = m.epoch;
        m.mark_osd_down(3);
        assert_eq!(m.epoch, e + 1);
        m.mark_osd_up(3);
        assert_eq!(m.epoch, e + 2);
    }

    #[test]
    fn acting_sets_match_pool_width() {
        let m = map();
        for seq in 0..128 {
            let rep = m.acting_set(PgId { pool: 1, seq });
            assert_eq!(rep.len(), 3, "pg {seq}");
            let ec = m.acting_set(PgId { pool: 2, seq });
            assert_eq!(ec.len(), 6, "pg {seq}");
        }
    }

    #[test]
    fn primary_is_first() {
        let m = map();
        let pg = PgId { pool: 1, seq: 5 };
        assert_eq!(m.primary(pg), Some(m.acting_set(pg)[0]));
    }

    #[test]
    fn down_osd_leaves_acting_sets() {
        let mut m = map();
        let victim = m.primary(PgId { pool: 1, seq: 0 }).unwrap();
        m.mark_osd_down(victim);
        for seq in 0..128 {
            let set = m.acting_set(PgId { pool: 1, seq });
            assert!(!set.contains(&victim), "pg {seq}");
        }
        assert!(m.is_osd_down(victim));
    }

    #[test]
    fn failure_remaps_bounded_fraction() {
        let before = map();
        let mut after = before.clone();
        after.mark_osd_down(7);
        let frac = before.remapped_fraction(&after, 1);
        // osd.7 holds ~3/32 of PG positions; remapped PGs ≈ 9 %.
        assert!(frac > 0.02, "{frac}");
        assert!(frac < 0.25, "{frac}");
    }

    #[test]
    fn unknown_pool_is_empty() {
        let m = map();
        assert!(m.acting_set(PgId { pool: 9, seq: 0 }).is_empty());
        assert_eq!(m.remapped_fraction(&m.clone(), 9), 0.0);
    }
}
