//! The OSDMap: cluster map epochs, CRUSH, pool table and OSD states.

use crate::pool::{PgId, PoolConfig};
use deliba_crush::{Bucket, BucketAlg, BucketId, CacheStats, CrushMap, DeviceId, PlacementCache, Rule};
use std::cell::RefCell;
use std::collections::BTreeMap;

/// Slots in the per-map placement cache.  Two pools × 128 PGs is the
/// paper testbed's whole working set; 1024 direct-mapped slots keep the
/// collision rate negligible.
const PLACEMENT_CACHE_SLOTS: usize = 1024;

/// The authoritative cluster map (what Ceph monitors distribute).
#[derive(Debug, Clone)]
pub struct OsdMap {
    /// Map epoch, bumped on every mutation.
    pub epoch: u64,
    crush: CrushMap,
    pools: BTreeMap<u32, PoolConfig>,
    /// Epoch-keyed CRUSH memo table.  Interior mutability because
    /// placement queries (`acting_set`, `remapped_fraction`) take
    /// `&self`; the engine owns its map exclusively, so a `RefCell`
    /// (not a lock) is the right tool.
    cache: RefCell<PlacementCache>,
}

impl OsdMap {
    /// Wrap a CRUSH map at epoch 1.
    pub fn new(crush: CrushMap) -> Self {
        OsdMap {
            epoch: 1,
            crush,
            pools: BTreeMap::new(),
            cache: RefCell::new(PlacementCache::new(PLACEMENT_CACHE_SLOTS)),
        }
    }

    /// The CRUSH map.
    pub fn crush(&self) -> &CrushMap {
        &self.crush
    }

    /// Mutable CRUSH access for mutations this map has no dedicated
    /// method for.  Conservatively bumps the epoch on every call: the
    /// caller *may* mutate through the returned reference, and a spurious
    /// bump only costs one cache refill while a missed bump would serve
    /// stale placement.
    pub fn crush_mut(&mut self) -> &mut CrushMap {
        self.epoch += 1;
        &mut self.crush
    }

    /// Register a pool.
    pub fn add_pool(&mut self, pool: PoolConfig) {
        self.pools.insert(pool.id, pool);
        self.epoch += 1;
    }

    /// Look up a pool.
    pub fn pool(&self, id: u32) -> Option<&PoolConfig> {
        self.pools.get(&id)
    }

    /// All pool ids.
    pub fn pool_ids(&self) -> Vec<u32> {
        self.pools.keys().copied().collect()
    }

    /// Mark an OSD down/out: placement immediately avoids it.
    pub fn mark_osd_down(&mut self, osd: DeviceId) {
        self.crush.mark_out(osd);
        self.epoch += 1;
    }

    /// Return an OSD to service.
    pub fn mark_osd_up(&mut self, osd: DeviceId) {
        self.crush.mark_in(osd);
        self.epoch += 1;
    }

    /// Is the OSD out?
    pub fn is_osd_down(&self, osd: DeviceId) -> bool {
        self.crush.is_out(osd)
    }

    /// Reweight `item` inside `bucket` (operator rebalance).
    pub fn reweight(&mut self, bucket: BucketId, item: i32, weight: u32) -> Option<u32> {
        let old = self.crush.bucket_mut(bucket)?.reweight_item(item, weight);
        self.epoch += 1;
        old
    }

    /// Add `item` to `bucket` (cluster growth).
    pub fn add_item(&mut self, bucket: BucketId, item: i32, weight: u32) -> Option<()> {
        self.crush.bucket_mut(bucket)?.add_item(item, weight);
        self.epoch += 1;
        Some(())
    }

    /// Remove `item` from `bucket` (decommission).
    pub fn remove_item(&mut self, bucket: BucketId, item: i32) -> Option<u32> {
        let w = self.crush.bucket_mut(bucket)?.remove_item(item);
        self.epoch += 1;
        w
    }

    /// Register or replace a placement rule.
    pub fn add_rule(&mut self, rule: Rule) {
        self.crush.add_rule(rule);
        self.epoch += 1;
    }

    /// Swap a bucket's selection algorithm (the DFX reconfiguration
    /// case: a partition's kernel changes under live I/O).
    pub fn set_bucket_alg(&mut self, bucket: BucketId, alg: BucketAlg) -> Option<()> {
        self.crush.bucket_mut(bucket)?.set_alg(alg);
        self.epoch += 1;
        Some(())
    }

    /// Immutable view of a bucket.
    pub fn bucket(&self, id: BucketId) -> Option<&Bucket> {
        self.crush.bucket(id)
    }

    /// The acting set of a PG: the OSDs serving it, primary first.
    pub fn acting_set(&self, pg: PgId) -> Vec<DeviceId> {
        let mut out = Vec::new();
        self.acting_set_into(pg, &mut out);
        out
    }

    /// [`acting_set`](Self::acting_set) into caller scratch: `out` is
    /// cleared and filled, no allocation on a warm cache.
    pub fn acting_set_into(&self, pg: PgId, out: &mut Vec<DeviceId>) {
        let Some(pool) = self.pools.get(&pg.pool) else {
            out.clear();
            return;
        };
        let seed = pool.pg_seed(pg);
        self.do_rule_cached(pool.crush_rule, seed, pool.kind.width(), out);
    }

    /// Run `rule` for input `x` through the epoch-keyed placement cache.
    /// Output-invariant versus `crush().do_rule(..)`: `do_rule` is a pure
    /// function of the key and the map contents, and every map mutation
    /// bumps the epoch in the key.
    pub fn do_rule_cached(&self, rule: u32, x: u32, num: usize, out: &mut Vec<DeviceId>) {
        self.cache
            .borrow_mut()
            .get_or_compute(rule, x, num, self.epoch, out, || {
                self.crush.do_rule(rule, x, num)
            });
    }

    /// Placement-cache counter snapshot.
    pub fn placement_cache_stats(&self) -> CacheStats {
        self.cache.borrow().stats()
    }

    /// Force the placement cache on or off (tests / determinism probes;
    /// normally governed by `DELIBA_NO_PLACEMENT_CACHE`).
    pub fn set_placement_cache_enabled(&self, enabled: bool) {
        self.cache.borrow_mut().set_enabled(enabled);
    }

    /// Primary OSD of a PG.
    pub fn primary(&self, pg: PgId) -> Option<DeviceId> {
        self.acting_set(pg).first().copied()
    }

    /// Total devices in the map.
    pub fn num_osds(&self) -> usize {
        self.crush.num_devices()
    }

    /// Fraction of PGs of `pool` whose acting set changed between this
    /// map and `other` — the rebalance measure DFX reacts to.
    pub fn remapped_fraction(&self, other: &OsdMap, pool: u32) -> f64 {
        let Some(p) = self.pools.get(&pool) else {
            return 0.0;
        };
        let total = p.pg_num;
        let mut moved = 0;
        for seq in 0..total {
            let pg = PgId { pool, seq };
            if self.acting_set(pg) != other.acting_set(pg) {
                moved += 1;
            }
        }
        moved as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deliba_crush::MapBuilder;

    fn map() -> OsdMap {
        let mut m = OsdMap::new(MapBuilder::new().build(8, 4));
        m.add_pool(PoolConfig::replicated(1, "rbd", 3, 128, 0));
        m.add_pool(PoolConfig::erasure(2, "ec", 4, 2, 128, 1));
        m
    }

    #[test]
    fn epochs_bump_on_mutation() {
        let mut m = map();
        let e = m.epoch;
        m.mark_osd_down(3);
        assert_eq!(m.epoch, e + 1);
        m.mark_osd_up(3);
        assert_eq!(m.epoch, e + 2);
    }

    #[test]
    fn acting_sets_match_pool_width() {
        let m = map();
        for seq in 0..128 {
            let rep = m.acting_set(PgId { pool: 1, seq });
            assert_eq!(rep.len(), 3, "pg {seq}");
            let ec = m.acting_set(PgId { pool: 2, seq });
            assert_eq!(ec.len(), 6, "pg {seq}");
        }
    }

    #[test]
    fn primary_is_first() {
        let m = map();
        let pg = PgId { pool: 1, seq: 5 };
        assert_eq!(m.primary(pg), Some(m.acting_set(pg)[0]));
    }

    #[test]
    fn down_osd_leaves_acting_sets() {
        let mut m = map();
        let victim = m.primary(PgId { pool: 1, seq: 0 }).unwrap();
        m.mark_osd_down(victim);
        for seq in 0..128 {
            let set = m.acting_set(PgId { pool: 1, seq });
            assert!(!set.contains(&victim), "pg {seq}");
        }
        assert!(m.is_osd_down(victim));
    }

    #[test]
    fn failure_remaps_bounded_fraction() {
        let before = map();
        let mut after = before.clone();
        after.mark_osd_down(7);
        let frac = before.remapped_fraction(&after, 1);
        // osd.7 holds ~3/32 of PG positions; remapped PGs ≈ 9 %.
        assert!(frac > 0.02, "{frac}");
        assert!(frac < 0.25, "{frac}");
    }

    #[test]
    fn unknown_pool_is_empty() {
        let m = map();
        assert!(m.acting_set(PgId { pool: 9, seq: 0 }).is_empty());
        assert_eq!(m.remapped_fraction(&m.clone(), 9), 0.0);
    }

    #[test]
    fn mutation_api_bumps_epoch() {
        let mut m = map();
        let host = -2; // first host bucket from MapBuilder
        let osd = m.bucket(host).unwrap().items()[0];
        let e = m.epoch;
        assert!(m.reweight(host, osd, deliba_crush::WEIGHT_ONE / 2).is_some());
        assert_eq!(m.epoch, e + 1);
        assert!(m.remove_item(host, osd).is_some());
        assert_eq!(m.epoch, e + 2);
        assert!(m.add_item(host, osd, deliba_crush::WEIGHT_ONE).is_some());
        assert_eq!(m.epoch, e + 3);
        assert!(m.set_bucket_alg(host, deliba_crush::BucketAlg::Straw2).is_some());
        assert_eq!(m.epoch, e + 4);
        let _ = m.crush_mut();
        assert_eq!(m.epoch, e + 5);
    }

    #[test]
    fn cached_acting_set_matches_uncached_through_churn() {
        let mut m = map();
        m.set_placement_cache_enabled(true);
        let check = |m: &OsdMap| {
            for pool in [1u32, 2] {
                for seq in 0..128 {
                    let pg = PgId { pool, seq };
                    let cached = m.acting_set(pg);
                    let p = m.pool(pool).unwrap();
                    let fresh = m.crush().do_rule(p.crush_rule, p.pg_seed(pg), p.kind.width());
                    assert_eq!(cached, fresh, "pool {pool} pg {seq}");
                }
            }
        };
        check(&m); // cold
        check(&m); // warm (hits)
        m.reweight(-2, m.bucket(-2).unwrap().items()[0], deliba_crush::WEIGHT_ONE / 4);
        check(&m); // after invalidation
        let s = m.placement_cache_stats();
        assert!(s.hits > 0 && s.misses > 0, "{s:?}");
    }

    #[test]
    fn cache_counters_report_hits() {
        let m = map();
        m.set_placement_cache_enabled(true);
        let pg = PgId { pool: 1, seq: 3 };
        let a = m.acting_set(pg);
        let b = m.acting_set(pg);
        assert_eq!(a, b);
        let s = m.placement_cache_stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 1);
    }
}
