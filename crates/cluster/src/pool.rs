//! Pools and placement groups.

use crate::object::ObjectId;
use deliba_crush::hash::hash32_2;

/// Placement-group identifier within a pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PgId {
    /// Owning pool.
    pub pool: u32,
    /// PG sequence number (`0..pg_num`).
    pub seq: u32,
}

/// Data-durability scheme of a pool — the two modes every DeLiBA
/// evaluation benchmarks side by side.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolKind {
    /// Primary-copy replication with `size` total copies.
    Replicated {
        /// Copies including the primary.
        size: usize,
    },
    /// Reed-Solomon erasure coding with `k` data + `m` parity chunks.
    Erasure {
        /// Data chunks.
        k: usize,
        /// Parity chunks.
        m: usize,
    },
}

impl PoolKind {
    /// Number of placement positions a PG needs.
    pub fn width(&self) -> usize {
        match *self {
            PoolKind::Replicated { size } => size,
            PoolKind::Erasure { k, m } => k + m,
        }
    }

    /// Storage amplification (stored bytes / logical bytes).
    pub fn amplification(&self) -> f64 {
        match *self {
            PoolKind::Replicated { size } => size as f64,
            PoolKind::Erasure { k, m } => (k + m) as f64 / k as f64,
        }
    }

    /// Minimum surviving positions that still allow reads.
    pub fn min_size(&self) -> usize {
        match *self {
            PoolKind::Replicated { .. } => 1,
            PoolKind::Erasure { k, .. } => k,
        }
    }
}

/// Pool configuration.
///
/// Immutable for the life of a run, so it doubles as
/// [`deliba_sim::SharedState`]: window workers read placement
/// parameters concurrently and mutations (there are none mid-run)
/// would happen only between windows.
#[derive(Debug, Clone)]
pub struct PoolConfig {
    /// Pool id.
    pub id: u32,
    /// Human-readable name.
    pub name: String,
    /// Durability scheme.
    pub kind: PoolKind,
    /// Number of placement groups (power of two).
    pub pg_num: u32,
    /// CRUSH rule executed for this pool's PGs.
    pub crush_rule: u32,
    /// Precomputed [`PoolConfig::pg_seed`] per PG sequence number.  The
    /// seed depends only on `(seq, id)`, both fixed at construction, so
    /// the hash is evaluated once here instead of per placement lookup
    /// on the engine's hot path.  Entries are produced by the same
    /// `hash32_2` call the accessor used to make inline — bit-identical
    /// by construction.
    pg_seeds: Vec<u32>,
}

fn seed_table(id: u32, pg_num: u32) -> Vec<u32> {
    (0..pg_num)
        .map(|seq| hash32_2(seq, id.wrapping_mul(0x9E37_79B9)))
        .collect()
}

impl deliba_sim::SharedState for PoolConfig {}

impl PoolConfig {
    /// A replicated pool.
    pub fn replicated(id: u32, name: &str, size: usize, pg_num: u32, crush_rule: u32) -> Self {
        assert!(pg_num.is_power_of_two(), "pg_num must be a power of two");
        assert!(size >= 1);
        PoolConfig {
            id,
            name: name.into(),
            kind: PoolKind::Replicated { size },
            pg_num,
            crush_rule,
            pg_seeds: seed_table(id, pg_num),
        }
    }

    /// An erasure-coded pool.
    pub fn erasure(id: u32, name: &str, k: usize, m: usize, pg_num: u32, crush_rule: u32) -> Self {
        assert!(pg_num.is_power_of_two());
        assert!(k >= 2 && m >= 1);
        PoolConfig {
            id,
            name: name.into(),
            kind: PoolKind::Erasure { k, m },
            pg_num,
            crush_rule,
            pg_seeds: seed_table(id, pg_num),
        }
    }

    /// Map an object to its placement group (stable modulo hashing, as
    /// Ceph's `ceph_stable_mod`).
    pub fn pg_of(&self, oid: ObjectId) -> PgId {
        debug_assert_eq!(oid.pool, self.id);
        let h = hash32_2(oid.placement_seed(), self.id);
        PgId {
            pool: self.id,
            seq: h & (self.pg_num - 1),
        }
    }

    /// The CRUSH input for a PG: mixes pool and PG so distinct pools'
    /// PGs decorrelate.
    pub fn pg_seed(&self, pg: PgId) -> u32 {
        match self.pg_seeds.get(pg.seq as usize) {
            Some(&s) => s,
            // Out-of-range seq (a foreign or corrupted PgId) falls back
            // to the defining hash so behaviour is unchanged.
            None => hash32_2(pg.seq, self.id.wrapping_mul(0x9E37_79B9)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widths_and_amplification() {
        let r = PoolKind::Replicated { size: 3 };
        assert_eq!(r.width(), 3);
        assert_eq!(r.amplification(), 3.0);
        assert_eq!(r.min_size(), 1);
        let e = PoolKind::Erasure { k: 4, m: 2 };
        assert_eq!(e.width(), 6);
        assert_eq!(e.amplification(), 1.5);
        assert_eq!(e.min_size(), 4);
    }

    #[test]
    fn pg_mapping_stable_and_in_range() {
        let pool = PoolConfig::replicated(3, "rbd", 3, 128, 0);
        for name in 0..1000u64 {
            let oid = ObjectId::new(3, name);
            let pg = pool.pg_of(oid);
            assert!(pg.seq < 128);
            assert_eq!(pg, pool.pg_of(oid), "stable");
        }
    }

    #[test]
    fn pgs_spread_across_range() {
        let pool = PoolConfig::replicated(1, "rbd", 3, 64, 0);
        let mut counts = vec![0u32; 64];
        for name in 0..12_800u64 {
            counts[pool.pg_of(ObjectId::new(1, name)).seq as usize] += 1;
        }
        let expect = 200.0;
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64 - expect).abs() / expect < 0.35,
                "pg {i}: {c} objects"
            );
        }
    }

    #[test]
    fn distinct_pools_decorrelate() {
        let a = PoolConfig::replicated(1, "a", 3, 64, 0);
        let b = PoolConfig::replicated(2, "b", 3, 64, 0);
        let same = (0..64u32)
            .filter(|&s| {
                a.pg_seed(PgId { pool: 1, seq: s }) == b.pg_seed(PgId { pool: 2, seq: s })
            })
            .count();
        assert_eq!(same, 0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn pg_num_validated() {
        PoolConfig::replicated(0, "x", 3, 100, 0);
    }

    #[test]
    fn seed_table_matches_hash() {
        let pool = PoolConfig::erasure(5, "ec", 4, 2, 256, 1);
        for seq in 0..300u32 {
            // In-range seqs hit the table, out-of-range the fallback;
            // both must equal the defining hash.
            assert_eq!(
                pool.pg_seed(PgId { pool: 5, seq }),
                hash32_2(seq, 5u32.wrapping_mul(0x9E37_79B9))
            );
        }
    }
}
