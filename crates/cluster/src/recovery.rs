//! Recovery, backfill, and scrub as *costed* background traffic.
//!
//! The legacy [`Cluster::recover`](crate::Cluster::recover) and
//! [`Cluster::scrub`](crate::Cluster::scrub) passes are synchronous and
//! free: they move bytes without occupying an OSD service queue or a
//! link for a single nanosecond.  Real Ceph recovery competes with
//! foreground I/O — that competition (recovery storms, scrub overhead,
//! degraded-mode latency) is exactly what this module makes measurable.
//!
//! * [`RecoveryPolicy`] — the scheduler knobs (Ceph's
//!   `osd_max_backfills` / `osd_recovery_max_active` analogues plus the
//!   deep-scrub cadence);
//! * [`RecoveryScheduler`] — the deterministic work queue: the engine
//!   rescans after every map change, and each recovery event-queue
//!   token dispatches one *wave* of backfills through the shared OSD
//!   and network timelines;
//! * [`PgHealth`] — the coarse healthy → degraded → recovering → clean
//!   state the scheduler walks;
//! * `Cluster::{recovery_scan, backfill_wave, scrub_tick,
//!   inject_bitrot}` — the costed passes themselves.
//!
//! Everything here runs in the engine's serial commit loop and draws
//! only from the fault plane's dedicated bit-rot stream, so arming a
//! scheduler never perturbs foreground RNG streams and results are
//! invariant across worker-thread counts.

use crate::cluster::{Cluster, ACK_SAME_SERVER};
use crate::object::ObjectId;
use crate::pool::PoolKind;
use bytes::Bytes;
use deliba_ec::ReedSolomon;
use deliba_sim::{SimDuration, SimRng, SimTime, Xoshiro256};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Scheduler knobs: how aggressively background traffic may compete
/// with foreground I/O.  `Copy` so it rides inside `EngineConfig`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryPolicy {
    /// Maximum backfill/rebuild operations in flight per wave (Ceph's
    /// `osd_recovery_max_active` spirit).  Clamped to ≥ 1.
    pub max_active: u32,
    /// Maximum concurrent backfill writes landing on one destination
    /// OSD per wave (Ceph's `osd_max_backfills`).  Clamped to ≥ 1.
    pub per_osd_reservation: u32,
    /// Delay between a map change and the first recovery wave (peering
    /// plus the operator-visible `osd_recovery_sleep` pacing).
    pub kick_delay: SimDuration,
    /// Period between deep-scrub ticks; `SimDuration::ZERO` disables
    /// scrub entirely.
    pub scrub_interval: SimDuration,
    /// Objects examined per scrub tick.  Clamped to ≥ 1 when scrub is
    /// enabled.
    pub scrub_chunk: u32,
}

impl Default for RecoveryPolicy {
    /// Moderate throttling: four concurrent backfills, two per
    /// destination OSD, half a millisecond of peering delay, scrub off.
    fn default() -> Self {
        RecoveryPolicy {
            max_active: 4,
            per_osd_reservation: 2,
            kick_delay: SimDuration::from_micros(500),
            scrub_interval: SimDuration::ZERO,
            scrub_chunk: 16,
        }
    }
}

impl RecoveryPolicy {
    /// Default policy with a different concurrency cap — the recovery
    /// aggressiveness sweep's single knob.
    pub fn with_max_active(max_active: u32) -> Self {
        RecoveryPolicy { max_active, ..RecoveryPolicy::default() }
    }

    /// Enable periodic deep scrub at `interval`, `chunk` objects per
    /// tick.
    pub fn with_scrub(mut self, interval: SimDuration, chunk: u32) -> Self {
        self.scrub_interval = interval;
        self.scrub_chunk = chunk;
        self
    }
}

/// Coarse placement-group health the scheduler walks (per-run, over
/// the whole cluster: the most degraded PG dominates).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PgHealth {
    /// No copies missing, no recovery pending.
    #[default]
    Healthy,
    /// Copies missing/stale; recovery not yet dispatched.
    Degraded,
    /// Recovery waves in flight.
    Recovering,
    /// All backfill drained after a degraded episode.
    Clean,
}

/// Counters the scheduler accumulates across a run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RecoveryStats {
    /// Backfill items completed (one replica copy or one EC object
    /// rebuild each).
    pub objects_recovered: u64,
    /// Copies rewritten by scrub repair.
    pub objects_repaired: u64,
    /// Background recovery operations dispatched.
    pub recovery_ops: u64,
    /// Payload bytes moved by backfill and repair writes.
    pub background_bytes: u64,
    /// Objects examined by deep scrub.
    pub scrub_objects: u64,
    /// Corrupted copies found by deep scrub (byte/parity compare).
    pub bitrot_detected: u64,
    /// Corrupted copies rewritten from an authoritative source.
    pub bitrot_repaired: u64,
    /// Cumulative virtual time from each degraded episode's start to
    /// its return to clean, in microseconds.
    pub time_to_clean_us: f64,
}

/// One unit of pending recovery work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BackfillItem {
    /// Re-copy a replicated object to one destination OSD.
    Replica { oid: ObjectId, dst: i32 },
    /// Reconstruct an EC object's missing shards (all of them).
    Ec { oid: ObjectId },
}

impl BackfillItem {
    /// Dedup key: kind tag, object, destination (−1 for whole-object
    /// EC rebuilds).
    fn key(&self) -> (u8, ObjectId, i32) {
        match *self {
            BackfillItem::Replica { oid, dst } => (0, oid, dst),
            BackfillItem::Ec { oid } => (1, oid, -1),
        }
    }
}

/// The deterministic, seeded background-work scheduler.
///
/// Owned by the engine next to the fault plane; every mutation happens
/// in the serial commit loop, so two runs with the same seed and
/// schedule replay identical waves regardless of worker threads.
#[derive(Debug)]
pub struct RecoveryScheduler {
    policy: RecoveryPolicy,
    pending: VecDeque<BackfillItem>,
    queued: BTreeSet<(u8, ObjectId, i32)>,
    unrecoverable: BTreeSet<ObjectId>,
    state: PgHealth,
    degraded_since: Option<SimTime>,
    scrub_cursor: Option<(u8, ObjectId)>,
    scrub_drain: bool,
    pass_found: u64,
    /// Accumulated counters (read by the engine's report assembly).
    pub stats: RecoveryStats,
}

impl RecoveryScheduler {
    /// A scheduler with the given policy and no pending work.
    pub fn new(policy: RecoveryPolicy) -> Self {
        RecoveryScheduler {
            policy,
            pending: VecDeque::new(),
            queued: BTreeSet::new(),
            unrecoverable: BTreeSet::new(),
            state: PgHealth::Healthy,
            degraded_since: None,
            scrub_cursor: None,
            scrub_drain: false,
            pass_found: 0,
            stats: RecoveryStats::default(),
        }
    }

    /// The configured knobs.
    pub fn policy(&self) -> RecoveryPolicy {
        self.policy
    }

    /// Backfill items awaiting dispatch.
    pub fn pending_items(&self) -> usize {
        self.pending.len()
    }

    /// Objects with missing copies and no surviving source at the last
    /// scan.
    pub fn unrecoverable_objects(&self) -> u64 {
        self.unrecoverable.len() as u64
    }

    /// Current coarse PG health.
    pub fn health(&self) -> PgHealth {
        self.state
    }

    /// Has scrub entered its end-of-run drain pass?
    pub fn scrub_draining(&self) -> bool {
        self.scrub_drain
    }

    /// Enter the end-of-run scrub drain: restart the cursor for one
    /// final complete pass so corruption injected late is still found.
    pub fn start_scrub_drain(&mut self) {
        self.scrub_drain = true;
        self.scrub_cursor = None;
        self.pass_found = 0;
    }

    /// Did the pass that just wrapped find any corruption?  (The drain
    /// loop stops after the first all-clean pass.)
    pub fn last_pass_found(&self) -> u64 {
        self.pass_found
    }

    fn enqueue(&mut self, item: BackfillItem) {
        if self.queued.insert(item.key()) {
            self.pending.push_back(item);
        }
    }

    fn note_work(&mut self, now: SimTime) {
        if self.degraded_since.is_none() {
            self.degraded_since = Some(now);
        }
        if self.state != PgHealth::Recovering {
            self.state = PgHealth::Degraded;
        }
    }

    /// Mark the cluster clean: all backfill drained at `now`.
    pub fn mark_clean(&mut self, now: SimTime) {
        if let Some(since) = self.degraded_since.take() {
            self.stats.time_to_clean_us += now.saturating_since(since).as_nanos() as f64 / 1e3;
        }
        self.state = PgHealth::Clean;
    }
}

/// One scrub tick's findings.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScrubTick {
    /// Virtual time the last charged read/write of the tick completed.
    pub finish: SimTime,
    /// Objects examined this tick.
    pub objects: u64,
    /// Corrupted copies detected this tick.
    pub detected: u64,
    /// Copies rewritten this tick.
    pub repaired: u64,
    /// Did the cursor wrap (a full pass completed)?
    pub wrapped: bool,
}

impl Cluster {
    /// Rescan the object directories against the current map and
    /// registries, enqueueing backfill work for every missing or stale
    /// copy.  Returns `true` when any work is pending afterwards.
    ///
    /// Pure bookkeeping — no virtual time is charged; the costed moves
    /// happen in [`Cluster::backfill_wave`].
    pub fn recovery_scan(&mut self, sched: &mut RecoveryScheduler, now: SimTime) -> bool {
        // Replicated objects: each up acting member must hold a fresh
        // copy; a valid source is any up, fresh, uncorrupted holder.
        let rep_entries: Vec<(ObjectId, Vec<i32>)> =
            self.replica_dir.iter().map(|(o, v)| (*o, v.clone())).collect();
        for (oid, holders) in rep_entries {
            let pool = self.map.pool(oid.pool).expect("pool exists").clone();
            if !matches!(pool.kind, PoolKind::Replicated { .. }) {
                continue;
            }
            let acting = self.map.acting_set(pool.pg_of(oid));
            let has_source = holders.iter().any(|&h| {
                self.osds[h as usize].is_up()
                    && !self.stale.contains(&(h, oid))
                    && !self.corrupted.contains(&(h, oid))
                    && self.osds[h as usize].store().version(oid).is_some()
            });
            let mut needs = Vec::new();
            for &dst in &acting {
                if !self.osds[dst as usize].is_up() {
                    continue;
                }
                let missing = self.osds[dst as usize].store().version(oid).is_none()
                    || self.stale.contains(&(dst, oid));
                if missing {
                    needs.push(dst);
                }
            }
            if needs.is_empty() {
                sched.unrecoverable.remove(&oid);
                continue;
            }
            if !has_source {
                sched.unrecoverable.insert(oid);
                continue;
            }
            sched.unrecoverable.remove(&oid);
            for dst in needs {
                sched.enqueue(BackfillItem::Replica { oid, dst });
            }
        }

        // EC objects: every placed shard must sit on an up OSD; rebuilds
        // need k readable shards.
        let ec_entries: Vec<(ObjectId, Vec<(i32, usize)>)> = self
            .shard_dir
            .iter()
            .map(|(o, (_, placed))| (*o, placed.clone()))
            .collect();
        for (oid, placed) in ec_entries {
            let pool = self.map.pool(oid.pool).expect("pool exists").clone();
            let PoolKind::Erasure { k, m } = pool.kind else {
                continue;
            };
            let readable = placed
                .iter()
                .filter(|&&(osd, _)| {
                    self.osds[osd as usize].is_up()
                        && !self.corrupted.contains(&(osd, oid))
                        && self.osds[osd as usize].store().version(oid).is_some()
                })
                .count();
            if readable == k + m {
                sched.unrecoverable.remove(&oid);
                continue;
            }
            if readable < k {
                sched.unrecoverable.insert(oid);
                continue;
            }
            sched.unrecoverable.remove(&oid);
            sched.enqueue(BackfillItem::Ec { oid });
        }

        let has_work = !sched.pending.is_empty();
        if has_work {
            sched.note_work(now);
        }
        has_work
    }

    /// Dispatch one wave of backfill: up to `max_active` items, at most
    /// `per_osd_reservation` landing on any destination OSD, every read,
    /// transfer and write charged on the shared OSD/network timelines.
    /// Returns the wave's completion time, or `None` when nothing could
    /// be dispatched.
    pub fn backfill_wave(
        &mut self,
        sched: &mut RecoveryScheduler,
        now: SimTime,
    ) -> Option<SimTime> {
        let max_active = sched.policy.max_active.max(1) as usize;
        let per_osd = sched.policy.per_osd_reservation.max(1) as usize;
        let mut dispatched = 0usize;
        let mut osd_load: BTreeMap<i32, usize> = BTreeMap::new();
        let mut deferred: Vec<BackfillItem> = Vec::new();
        let mut finish: Option<SimTime> = None;
        sched.state = PgHealth::Recovering;

        while dispatched < max_active {
            let Some(item) = sched.pending.pop_front() else {
                break;
            };
            // Per-OSD reservations: an item whose destination is already
            // saturated this wave waits for the next one.
            let dsts = self.backfill_dsts(&item);
            if dsts.iter().any(|d| osd_load.get(d).copied().unwrap_or(0) >= per_osd) {
                deferred.push(item);
                continue;
            }
            sched.queued.remove(&item.key());
            match self.backfill_one(item, now) {
                Some((fin, bytes)) => {
                    for d in dsts {
                        *osd_load.entry(d).or_insert(0) += 1;
                    }
                    sched.stats.recovery_ops += 1;
                    sched.stats.objects_recovered += 1;
                    sched.stats.background_bytes += bytes;
                    finish = Some(finish.map_or(fin, |f: SimTime| f.max(fin)));
                    dispatched += 1;
                }
                None => {
                    // Unservable right now (source or destination went
                    // away since the scan); the next rescan re-triages.
                }
            }
        }
        for item in deferred {
            // Deferred items keep their dedup entry and go back first.
            sched.pending.push_front(item);
        }
        finish
    }

    /// Destination OSDs an item will write to (reservation accounting).
    fn backfill_dsts(&self, item: &BackfillItem) -> Vec<i32> {
        match *item {
            BackfillItem::Replica { dst, .. } => vec![dst],
            BackfillItem::Ec { oid } => {
                let Some((_, placed)) = self.shard_dir.get(&oid) else {
                    return Vec::new();
                };
                let pool = self.map.pool(oid.pool).expect("pool exists");
                let pg = pool.pg_of(oid);
                let held: Vec<i32> = placed
                    .iter()
                    .filter(|&&(osd, _)| {
                        self.osds[osd as usize].is_up()
                            && self.osds[osd as usize].store().version(oid).is_some()
                    })
                    .map(|&(osd, _)| osd)
                    .collect();
                let missing = placed.len().saturating_sub(held.len())
                    + (pool.kind.width().saturating_sub(placed.len()));
                self.map
                    .acting_set(pg)
                    .into_iter()
                    .filter(|o| self.osds[*o as usize].is_up() && !held.contains(o))
                    .take(missing)
                    .collect()
            }
        }
    }

    /// Execute one backfill item with real costs.  Returns the commit
    /// time and payload bytes moved, or `None` when the item is no
    /// longer servable.
    fn backfill_one(&mut self, item: BackfillItem, now: SimTime) -> Option<(SimTime, u64)> {
        match item {
            BackfillItem::Replica { oid, dst } => {
                if !self.osds[dst as usize].is_up() {
                    return None;
                }
                let holders = self.replica_dir.get(&oid)?.clone();
                let src = *holders.iter().find(|&&h| {
                    h != dst
                        && self.osds[h as usize].is_up()
                        && !self.stale.contains(&(h, oid))
                        && !self.corrupted.contains(&(h, oid))
                        && self.osds[h as usize].store().version(oid).is_some()
                })?;
                let len = self.osds[src as usize].store().peek_len(oid)?;
                // Costed source read (media + queue on the shared OSD).
                let mut buf = Vec::new();
                let read_fin = self.osds[src as usize]
                    .read_object_at_into(now, oid, 0, len, false, &mut buf)
                    .expect("source is up");
                // Push src → dst over the cluster network.
                let s_from = self.server_of(src);
                let s_to = self.server_of(dst);
                let arrive = if s_from == s_to {
                    read_fin + ACK_SAME_SERVER
                } else {
                    self.topology.server_to_server(read_fin, s_from, s_to, len as u64)
                };
                let fin = self.osds[dst as usize]
                    .write_object(arrive, oid, Bytes::from(buf), false)
                    .expect("destination is up");
                // A full-object copy makes the destination fresh.
                self.stale.remove(&(dst, oid));
                self.corrupted.remove(&(dst, oid));
                if let Some(h) = self.replica_dir.get_mut(&oid) {
                    if !h.contains(&dst) {
                        h.push(dst);
                    }
                }
                Some((fin, len as u64))
            }
            BackfillItem::Ec { oid } => {
                let (orig_len, placed) = self.shard_dir.get(&oid)?.clone();
                let pool = self.map.pool(oid.pool).expect("pool exists").clone();
                let PoolKind::Erasure { k, m } = pool.kind else {
                    return None;
                };
                // Gather k readable shards with costed reads, streamed
                // back to the client for reconstruction.
                let mut slots: Vec<Option<Vec<u8>>> = vec![None; k + m];
                let mut survivors: Vec<(i32, usize)> = Vec::new();
                let mut gather = now;
                let mut fetched = 0usize;
                for &(osd, idx) in &placed {
                    if fetched >= k {
                        break;
                    }
                    if !self.osds[osd as usize].is_up()
                        || self.corrupted.contains(&(osd, oid))
                    {
                        continue;
                    }
                    let Some(len) = self.osds[osd as usize].store().peek_len(oid) else {
                        continue;
                    };
                    let mut buf = Vec::new();
                    let fin = self.osds[osd as usize]
                        .read_object_at_into(now, oid, 0, len, false, &mut buf)
                        .expect("checked up");
                    let at_client =
                        self.topology
                            .server_to_client(fin, self.server_of(osd), len as u64);
                    gather = gather.max(at_client);
                    slots[idx] = Some(buf);
                    survivors.push((osd, idx));
                    fetched += 1;
                }
                if fetched < k {
                    return None;
                }
                let rs = ReedSolomon::new(k, m);
                rs.reconstruct(&mut slots).ok()?;
                let data_shards: Vec<Vec<u8>> =
                    (0..k).map(|i| slots[i].clone().expect("reconstructed")).collect();
                for (pi, p) in rs.encode_parity(&data_shards).into_iter().enumerate() {
                    slots[k + pi] = Some(p);
                }
                // Survivors plus every other up placed holder keep their
                // shards; rebuild the rest onto fresh acting members.
                let mut held: Vec<i32> = survivors.iter().map(|&(o, _)| o).collect();
                let mut new_placed = survivors.clone();
                for &(osd, idx) in &placed {
                    if held.contains(&osd) {
                        continue;
                    }
                    if self.osds[osd as usize].is_up()
                        && !self.corrupted.contains(&(osd, oid))
                        && self.osds[osd as usize].store().version(oid).is_some()
                        && !new_placed.iter().any(|&(_, i)| i == idx)
                    {
                        held.push(osd);
                        new_placed.push((osd, idx));
                    }
                }
                let missing_idx: Vec<usize> = (0..k + m)
                    .filter(|i| !new_placed.iter().any(|&(_, idx)| idx == *i))
                    .collect();
                let targets: Vec<i32> = self
                    .map
                    .acting_set(pool.pg_of(oid))
                    .into_iter()
                    .filter(|o| self.osds[*o as usize].is_up() && !held.contains(o))
                    .collect();
                let mut targets = targets.into_iter();
                let mut fin = gather;
                let mut moved = 0u64;
                for idx in missing_idx {
                    let Some(dst) = targets.next() else { break };
                    let shard = slots[idx].clone().expect("filled above");
                    let len = shard.len() as u64;
                    let arrive =
                        self.topology
                            .client_to_server(gather, self.server_of(dst), len);
                    let w_fin = self.osds[dst as usize]
                        .write_object(arrive, oid, Bytes::from(shard), false)
                        .expect("destination is up");
                    self.stale.remove(&(dst, oid));
                    self.corrupted.remove(&(dst, oid));
                    fin = fin.max(w_fin);
                    moved += len;
                    new_placed.push((dst, idx));
                }
                self.shard_dir.insert(oid, (orig_len, new_placed));
                Some((fin, moved))
            }
        }
    }

    /// One deep-scrub tick: examine up to `scrub_chunk` objects past the
    /// cursor (both pools, replica directory first), charging a full
    /// media read per readable copy, byte/parity-comparing, and pushing
    /// costed repair writes for every mismatch.
    pub fn scrub_tick(&mut self, sched: &mut RecoveryScheduler, now: SimTime) -> ScrubTick {
        let chunk = sched.policy.scrub_chunk.max(1) as usize;
        let mut tick = ScrubTick { finish: now, ..ScrubTick::default() };

        // The merged, ordered keyspace: (0, oid) replicated, (1, oid) EC.
        let keys: Vec<(u8, ObjectId)> = self
            .replica_dir
            .keys()
            .map(|o| (0u8, *o))
            .chain(self.shard_dir.keys().map(|o| (1u8, *o)))
            .collect();
        if keys.is_empty() {
            tick.wrapped = true;
            sched.pass_found = 0;
            return tick;
        }
        let start = match sched.scrub_cursor {
            None => 0,
            Some(last) => keys.partition_point(|&k| k <= last),
        };
        let mut idx = start;
        while idx < keys.len() && tick.objects < chunk as u64 {
            let (tag, oid) = keys[idx];
            let (fin, detected, repaired) = if tag == 0 {
                self.scrub_replicated_object(oid, now)
            } else {
                self.scrub_ec_object(oid, now)
            };
            tick.finish = tick.finish.max(fin);
            tick.detected += detected;
            tick.repaired += repaired;
            tick.objects += 1;
            idx += 1;
        }
        sched.stats.scrub_objects += tick.objects;
        sched.stats.bitrot_detected += tick.detected;
        sched.stats.bitrot_repaired += tick.repaired;
        sched.stats.objects_repaired += tick.repaired;
        sched.pass_found += tick.detected;
        if idx >= keys.len() {
            tick.wrapped = true;
            sched.scrub_cursor = None;
        } else {
            sched.scrub_cursor = Some(keys[idx - 1]);
        }
        tick
    }

    /// Reset the per-pass found counter (call when a pass wraps to
    /// decide whether the drain loop may stop).
    pub fn scrub_pass_reset(&self, sched: &mut RecoveryScheduler) -> u64 {
        let found = sched.pass_found;
        sched.pass_found = 0;
        found
    }

    /// Deep-scrub one replicated object: every readable fresh copy does
    /// a local media read; mismatching copies are rewritten from the
    /// majority (ties to the first holder) over the cluster network.
    fn scrub_replicated_object(
        &mut self,
        oid: ObjectId,
        now: SimTime,
    ) -> (SimTime, u64, u64) {
        let holders = match self.replica_dir.get(&oid) {
            Some(h) => h.clone(),
            None => return (now, 0, 0),
        };
        let mut copies: Vec<(i32, Vec<u8>)> = Vec::new();
        let mut fin = now;
        for &osd in &holders {
            if !self.osds[osd as usize].is_up() || self.stale.contains(&(osd, oid)) {
                continue; // stale copies are backfill's job, not scrub's
            }
            let Some(len) = self.osds[osd as usize].store().peek_len(oid) else {
                continue;
            };
            let mut buf = Vec::new();
            let r_fin = self.osds[osd as usize]
                .read_object_at_into(now, oid, 0, len, false, &mut buf)
                .expect("checked up");
            fin = fin.max(r_fin);
            copies.push((osd, buf));
        }
        if copies.len() < 2 {
            return (fin, 0, 0);
        }
        // Majority vote; ties go to the first (write-time primary) copy.
        let mut best: Option<(usize, usize)> = None;
        for (i, (_, d)) in copies.iter().enumerate() {
            let votes = copies.iter().filter(|(_, x)| x == d).count();
            if best.map(|(_, v)| votes > v).unwrap_or(true) {
                best = Some((i, votes));
            }
        }
        let auth_idx = best.expect("non-empty").0;
        let auth = copies[auth_idx].1.clone();
        let auth_osd = copies[auth_idx].0;
        let mut detected = 0;
        let mut repaired = 0;
        for (osd, d) in &copies {
            if *d != auth {
                detected += 1;
                // Push the authoritative copy to the bad holder.
                let s_from = self.server_of(auth_osd);
                let s_to = self.server_of(*osd);
                let arrive = if s_from == s_to {
                    fin + ACK_SAME_SERVER
                } else {
                    self.topology.server_to_server(fin, s_from, s_to, auth.len() as u64)
                };
                let w_fin = self.osds[*osd as usize]
                    .write_object(arrive, oid, Bytes::from(auth.clone()), false)
                    .expect("checked up");
                fin = fin.max(w_fin);
                repaired += 1;
            }
        }
        if detected > 0 {
            // The object is consistent again: drop every registry entry.
            let entries: Vec<(i32, ObjectId)> = self
                .corrupted
                .iter()
                .filter(|&&(_, o)| o == oid)
                .copied()
                .collect();
            for e in entries {
                self.corrupted.remove(&e);
            }
        }
        (fin, detected, repaired)
    }

    /// Deep-scrub one EC object: read every readable shard, re-encode
    /// the parity and compare.  Attribution of the bad shard uses the
    /// corruption registry (modeling Ceph's per-shard hinfo CRCs); the
    /// shard is reconstructed from the surviving k and rewritten.
    fn scrub_ec_object(&mut self, oid: ObjectId, now: SimTime) -> (SimTime, u64, u64) {
        let (orig_len, placed) = match self.shard_dir.get(&oid) {
            Some(p) => p.clone(),
            None => return (now, 0, 0),
        };
        let _ = orig_len;
        let pool = self.map.pool(oid.pool).expect("pool exists").clone();
        let PoolKind::Erasure { k, m } = pool.kind else {
            return (now, 0, 0);
        };
        let rs = ReedSolomon::new(k, m);
        let mut slots: Vec<Option<Vec<u8>>> = vec![None; k + m];
        let mut holder_of: Vec<Option<i32>> = vec![None; k + m];
        let mut fin = now;
        for &(osd, idx) in &placed {
            if !self.osds[osd as usize].is_up() {
                continue;
            }
            let Some(len) = self.osds[osd as usize].store().peek_len(oid) else {
                continue;
            };
            let mut buf = Vec::new();
            let r_fin = self.osds[osd as usize]
                .read_object_at_into(now, oid, 0, len, false, &mut buf)
                .expect("checked up");
            fin = fin.max(r_fin);
            slots[idx] = Some(buf);
            holder_of[idx] = Some(osd);
        }
        if !(0..k).all(|i| slots[i].is_some()) {
            return (fin, 0, 0); // data shards missing → recovery's job
        }
        let data_shards: Vec<Vec<u8>> = (0..k).map(|i| slots[i].clone().unwrap()).collect();
        let parity = rs.encode_parity(&data_shards);
        let mismatch = parity.iter().enumerate().any(|(pi, p)| {
            slots[k + pi].as_ref().map(|stored| stored != p).unwrap_or(false)
        });
        if !mismatch {
            return (fin, 0, 0);
        }
        // Which shard is bad?  Consult the registry (hinfo CRC model);
        // without an entry, fall back to rewriting the divergent parity.
        let bad: Vec<(i32, usize)> = placed
            .iter()
            .filter(|&&(osd, _)| self.corrupted.contains(&(osd, oid)))
            .copied()
            .collect();
        let mut detected = 0;
        let mut repaired = 0;
        if bad.is_empty() {
            for (pi, p) in parity.into_iter().enumerate() {
                let divergent = slots[k + pi]
                    .as_ref()
                    .map(|stored| stored != &p)
                    .unwrap_or(false);
                if divergent {
                    if let Some(osd) = holder_of[k + pi] {
                        detected += 1;
                        let arrive = self.topology.client_to_server(
                            fin,
                            self.server_of(osd),
                            p.len() as u64,
                        );
                        let w_fin = self.osds[osd as usize]
                            .write_object(arrive, oid, Bytes::from(p), false)
                            .expect("checked up");
                        fin = fin.max(w_fin);
                        repaired += 1;
                    }
                }
            }
        } else {
            for (osd, idx) in bad {
                detected += 1;
                // Reconstruct the registered shard from the others.
                let mut work = slots.clone();
                work[idx] = None;
                if rs.reconstruct(&mut work).is_err() {
                    continue; // not enough good shards — unrepairable now
                }
                let good = if idx < k {
                    work[idx].clone().expect("reconstructed")
                } else {
                    rs.encode_parity(
                        &(0..k).map(|i| work[i].clone().unwrap()).collect::<Vec<_>>(),
                    )[idx - k]
                        .clone()
                };
                let arrive = self.topology.client_to_server(
                    fin,
                    self.server_of(osd),
                    good.len() as u64,
                );
                let w_fin = self.osds[osd as usize]
                    .write_object(arrive, oid, Bytes::from(good.clone()), false)
                    .expect("checked up");
                fin = fin.max(w_fin);
                slots[idx] = Some(good);
                self.corrupted.remove(&(osd, oid));
                repaired += 1;
            }
        }
        (fin, detected, repaired)
    }

    /// Fire a [`FaultKind::BitRot`](deliba_fault::FaultKind) event: flip
    /// one stored byte in up to `copies` distinct objects' copies, drawn
    /// deterministically from the plane's dedicated bit-rot stream.
    /// At most one copy per object ever carries rot (until repaired), so
    /// majority vote and EC reconstruction always have a good quorum.
    /// Returns how many copies were corrupted.
    pub fn inject_bitrot(&mut self, copies: u32, rng: &mut Xoshiro256) -> u64 {
        let rotten_oids: BTreeSet<ObjectId> =
            self.corrupted.iter().map(|&(_, o)| o).collect();
        let mut pool: Vec<(i32, ObjectId)> = Vec::new();
        for (oid, holders) in &self.replica_dir {
            if rotten_oids.contains(oid) {
                continue;
            }
            for &h in holders {
                if self.osds[h as usize].is_up()
                    && !self.stale.contains(&(h, *oid))
                    && self.osds[h as usize]
                        .store()
                        .peek_len(*oid)
                        .map(|l| l > 0)
                        .unwrap_or(false)
                {
                    pool.push((h, *oid));
                }
            }
        }
        for (oid, (_, placed)) in &self.shard_dir {
            if rotten_oids.contains(oid) {
                continue;
            }
            for &(osd, _) in placed {
                if self.osds[osd as usize].is_up()
                    && self.osds[osd as usize]
                        .store()
                        .peek_len(*oid)
                        .map(|l| l > 0)
                        .unwrap_or(false)
                {
                    pool.push((osd, *oid));
                }
            }
        }
        let mut hit_oids: BTreeSet<ObjectId> = BTreeSet::new();
        let mut injected = 0u64;
        while injected < copies as u64 && !pool.is_empty() {
            let i = rng.gen_range(pool.len() as u64) as usize;
            let (osd, oid) = pool.swap_remove(i);
            if hit_oids.contains(&oid) {
                continue;
            }
            let store = self.osds[osd as usize].store_mut();
            let Some(len) = store.peek_len(oid) else { continue };
            if len == 0 {
                continue;
            }
            // Flip one byte in the middle of the stored payload.
            let mid = len / 2;
            let cur = store.read_at(oid, mid, 1);
            store.write_at(oid, mid, &[cur[0] ^ 0xFF]);
            self.corrupted.insert((osd, oid));
            hit_oids.insert(oid);
            injected += 1;
        }
        injected
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deliba_sim::SimTime;

    fn oid_rep(name: u64) -> ObjectId {
        ObjectId::new(1, name)
    }
    fn oid_ec(name: u64) -> ObjectId {
        ObjectId::new(2, name)
    }
    fn payload(len: usize, tag: u8) -> Bytes {
        Bytes::from((0..len).map(|i| (i as u8).wrapping_add(tag)).collect::<Vec<u8>>())
    }

    fn seeded_cluster(seed: u64, objects: u64) -> (Cluster, SimTime) {
        let mut c = Cluster::paper_testbed(seed);
        let mut t = SimTime::ZERO;
        for i in 0..objects {
            let w = c
                .write_replicated(t, oid_rep(i), payload(8192, i as u8), true)
                .unwrap();
            t = w.complete;
        }
        (c, t)
    }

    #[test]
    fn scan_finds_missing_copies_and_wave_heals_them() {
        let (mut c, t) = seeded_cluster(31, 8);
        let victim = c.replica_dir.get(&oid_rep(0)).unwrap()[0];
        c.fail_osd(victim);
        let mut sched = RecoveryScheduler::new(RecoveryPolicy::default());
        assert!(c.recovery_scan(&mut sched, t), "crash leaves work to do");
        assert!(sched.pending_items() > 0);
        assert_eq!(sched.health(), PgHealth::Degraded);
        // Drain all waves.
        let mut now = t;
        let mut guard = 0;
        while sched.pending_items() > 0 {
            if let Some(fin) = c.backfill_wave(&mut sched, now) {
                assert!(fin > now, "backfill charges real time");
                now = fin;
            }
            c.recovery_scan(&mut sched, now);
            guard += 1;
            assert!(guard < 1000, "waves must make progress");
        }
        sched.mark_clean(now);
        assert_eq!(sched.health(), PgHealth::Clean);
        assert!(sched.stats.objects_recovered > 0);
        assert!(sched.stats.background_bytes > 0);
        assert!(sched.stats.time_to_clean_us > 0.0);
        assert_eq!(sched.unrecoverable_objects(), 0);
        // Every object is fully replicated again on up OSDs.
        assert!(!c.recovery_scan(&mut sched, now));
        // And the healed copies serve reads with the right bytes.
        for i in 0..8 {
            let (data, _) = c.read_replicated(now, oid_rep(i), 0, 8192, true).unwrap();
            assert_eq!(data, payload(8192, i as u8), "object {i}");
        }
    }

    #[test]
    fn wave_respects_concurrency_caps() {
        let (mut c, t) = seeded_cluster(32, 24);
        let victim = c.replica_dir.get(&oid_rep(0)).unwrap()[0];
        c.fail_osd(victim);
        let mut sched = RecoveryScheduler::new(RecoveryPolicy::with_max_active(2));
        c.recovery_scan(&mut sched, t);
        let before = sched.pending_items();
        if before >= 2 {
            c.backfill_wave(&mut sched, t);
            assert!(
                before - sched.pending_items() <= 2,
                "a wave never exceeds max_active"
            );
        }
    }

    #[test]
    fn all_copies_lost_is_unrecoverable_until_a_source_revives() {
        let (mut c, t) = seeded_cluster(33, 4);
        let holders = c.replica_dir.get(&oid_rep(2)).unwrap().clone();
        for &h in &holders {
            c.fail_osd(h);
        }
        let mut sched = RecoveryScheduler::new(RecoveryPolicy::default());
        c.recovery_scan(&mut sched, t);
        assert!(sched.unrecoverable_objects() >= 1);
        // A surviving copy comes back: recoverable again.
        c.revive_osd(holders[0]);
        c.recovery_scan(&mut sched, t);
        assert_eq!(sched.unrecoverable_objects(), 0);
    }

    #[test]
    fn ec_rebuild_restores_full_width() {
        let mut c = Cluster::paper_testbed(34);
        let data = payload(16 * 1024, 5);
        let shards = ReedSolomon::new(4, 2).encode(&data);
        let w = c
            .write_ec_shards(SimTime::ZERO, oid_ec(1), data.len(), shards, true)
            .unwrap();
        let placed = c.shard_dir.get(&oid_ec(1)).unwrap().1.clone();
        c.fail_osd(placed[1].0);
        c.fail_osd(placed[4].0);
        let mut sched = RecoveryScheduler::new(RecoveryPolicy::default());
        assert!(c.recovery_scan(&mut sched, w.complete));
        let fin = c.backfill_wave(&mut sched, w.complete).expect("dispatched");
        assert!(fin > w.complete);
        // Full width again on up OSDs; bytes intact.
        let placed2 = c.shard_dir.get(&oid_ec(1)).unwrap().1.clone();
        let up = placed2
            .iter()
            .filter(|&&(o, _)| c.osd_is_up(o))
            .count();
        assert_eq!(up, 6, "rebuilt to k+m on surviving OSDs");
        let (read, _) = c.read_ec(fin, oid_ec(1), true).unwrap();
        assert_eq!(read, data);
        c.recovery_scan(&mut sched, fin);
        assert_eq!(sched.pending_items(), 0, "nothing left to rebuild");
    }

    #[test]
    fn bitrot_injection_is_seeded_and_detected_by_scrub() {
        let (mut c, t) = seeded_cluster(35, 12);
        let mut rng_a = Xoshiro256::seed_from_u64(99);
        let n = c.inject_bitrot(5, &mut rng_a);
        assert_eq!(n, 5);
        assert_eq!(c.corrupted_copies(), 5);

        // Same seed, same cluster state → same picks.
        let (mut c2, _) = seeded_cluster(35, 12);
        let mut rng_b = Xoshiro256::seed_from_u64(99);
        c2.inject_bitrot(5, &mut rng_b);
        assert_eq!(
            c.corrupted.iter().collect::<Vec<_>>(),
            c2.corrupted.iter().collect::<Vec<_>>()
        );

        // A full scrub pass detects and repairs every flipped copy.
        let mut sched =
            RecoveryScheduler::new(RecoveryPolicy::default().with_scrub(SimDuration::from_micros(100), 64));
        let tick = c.scrub_tick(&mut sched, t);
        assert!(tick.wrapped, "chunk 64 covers 12 objects in one tick");
        assert_eq!(tick.detected, 5, "all corruption found");
        assert_eq!(tick.repaired, 5, "all corruption repaired");
        assert!(tick.finish > t, "scrub charges media time");
        assert_eq!(c.corrupted_copies(), 0);
        // Bytes are byte-identical to the originals after repair.
        for i in 0..12 {
            let (data, r) = c.read_replicated(tick.finish, oid_rep(i), 0, 8192, true).unwrap();
            assert_eq!(data, payload(8192, i as u8), "object {i}");
            assert!(!r.degraded);
        }
        // A second pass is clean.
        let tick2 = c.scrub_tick(&mut sched, tick.finish);
        assert_eq!(tick2.detected, 0);
    }

    #[test]
    fn scrub_detects_ec_shard_rot() {
        let mut c = Cluster::paper_testbed(36);
        let data = payload(12 * 1024, 7);
        let shards = ReedSolomon::new(4, 2).encode(&data);
        let w = c
            .write_ec_shards(SimTime::ZERO, oid_ec(3), data.len(), shards, true)
            .unwrap();
        // Corrupt one data shard via the seeded injector (EC pool only).
        let mut rng = Xoshiro256::seed_from_u64(7);
        assert_eq!(c.inject_bitrot(1, &mut rng), 1);
        let mut sched = RecoveryScheduler::new(
            RecoveryPolicy::default().with_scrub(SimDuration::from_micros(100), 64),
        );
        let tick = c.scrub_tick(&mut sched, w.complete);
        assert_eq!(tick.detected, 1);
        assert_eq!(tick.repaired, 1);
        assert_eq!(c.corrupted_copies(), 0);
        let (read, r) = c.read_ec(tick.finish, oid_ec(3), true).unwrap();
        assert_eq!(read, data, "post-repair bytes identical");
        assert!(!r.degraded);
    }

    #[test]
    fn degraded_and_post_repair_reads_byte_identical_property() {
        // Property: across random kill/bit-rot sets on both pool kinds,
        // degraded reads and post-repair reads return exactly the bytes
        // written.
        for seed in 0..6u64 {
            let mut c = Cluster::paper_testbed(40 + seed);
            let mut rng = Xoshiro256::seed_from_u64(1000 + seed);
            let mut t = SimTime::ZERO;
            let rs = ReedSolomon::new(4, 2);
            for i in 0..6u64 {
                let w = c
                    .write_replicated(t, oid_rep(i), payload(4096, (seed * 17 + i) as u8), true)
                    .unwrap();
                t = w.complete;
                let data = payload(6144, (seed * 31 + i) as u8);
                let w2 = c
                    .write_ec_shards(t, oid_ec(i), data.len(), rs.encode(&data), true)
                    .unwrap();
                t = w2.complete;
            }
            // Random kill (one OSD) + random bit rot (3 copies).
            let kill = rng.gen_range(32) as i32;
            c.fail_osd(kill);
            c.inject_bitrot(3, &mut rng);
            // Degraded reads are byte-identical to what was written.
            for i in 0..6u64 {
                if let Some((data, _)) = c.read_replicated(t, oid_rep(i), 0, 4096, true) {
                    assert_eq!(data, payload(4096, (seed * 17 + i) as u8), "rep {seed}/{i}");
                }
                if let Some((data, _)) = c.read_ec(t, oid_ec(i), true) {
                    assert_eq!(data, payload(6144, (seed * 31 + i) as u8), "ec {seed}/{i}");
                }
            }
            // Heal: revive, backfill, scrub-repair; then re-verify.
            c.revive_osd(kill);
            let mut sched = RecoveryScheduler::new(
                RecoveryPolicy::default().with_scrub(SimDuration::from_micros(100), 1024),
            );
            let mut now = t;
            let mut guard = 0;
            while c.recovery_scan(&mut sched, now) {
                if let Some(fin) = c.backfill_wave(&mut sched, now) {
                    now = fin;
                }
                guard += 1;
                assert!(guard < 1000);
            }
            let tick = c.scrub_tick(&mut sched, now);
            now = now.max(tick.finish);
            assert_eq!(c.corrupted_copies(), 0, "seed {seed}: scrub repaired all rot");
            for i in 0..6u64 {
                let (data, r) = c.read_replicated(now, oid_rep(i), 0, 4096, true).unwrap();
                assert_eq!(data, payload(4096, (seed * 17 + i) as u8));
                assert!(!r.degraded, "rep {seed}/{i} healthy again");
                let (data, r) = c.read_ec(now, oid_ec(i), true).unwrap();
                assert_eq!(data, payload(6144, (seed * 31 + i) as u8));
                assert!(!r.degraded, "ec {seed}/{i} healthy again");
            }
        }
    }

    #[test]
    fn scrub_cursor_paces_passes() {
        let (mut c, t) = seeded_cluster(37, 10);
        let mut sched = RecoveryScheduler::new(
            RecoveryPolicy::default().with_scrub(SimDuration::from_micros(50), 3),
        );
        let mut ticks = 0;
        let mut now = t;
        loop {
            let tick = c.scrub_tick(&mut sched, now);
            now = now.max(tick.finish);
            ticks += 1;
            if tick.wrapped {
                break;
            }
            assert!(ticks < 100);
        }
        assert_eq!(ticks, 4, "10 objects at chunk 3 → 4 ticks");
        assert_eq!(sched.stats.scrub_objects, 10);
    }
}
