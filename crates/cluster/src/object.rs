//! Objects and object stores.
//!
//! Objects are stored page-sparsely (4 KiB pages) so that partial writes
//! into large RBD objects cost only the bytes actually written — the
//! same reason BlueStore never rewrites whole objects for small I/O.

use bytes::Bytes;
use std::collections::BTreeMap;

/// Page granularity of the store.
const PAGE: usize = 4096;

/// A RADOS-style object identifier: pool + 64-bit object name hash.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjectId {
    /// Owning pool.
    pub pool: u32,
    /// Object name (already hashed; RBD object names hash the image id
    /// and stripe index).
    pub name: u64,
}

impl ObjectId {
    /// Construct.
    pub fn new(pool: u32, name: u64) -> Self {
        ObjectId { pool, name }
    }

    /// The 32-bit placement seed CRUSH hashes (Ceph uses the low bits of
    /// the name hash).
    pub fn placement_seed(&self) -> u32 {
        (self.name ^ (self.name >> 32)) as u32
    }
}

/// A stored object: sparse pages + logical length + version.
#[derive(Debug, Clone, Default)]
struct StoredObject {
    pages: BTreeMap<u32, Box<[u8; PAGE]>>,
    len: usize,
    version: u64,
}

impl StoredObject {
    fn write_at(&mut self, offset: usize, data: &[u8]) {
        let mut cur = offset;
        let mut rest = data;
        while !rest.is_empty() {
            let page_no = (cur / PAGE) as u32;
            let in_page = cur % PAGE;
            let n = rest.len().min(PAGE - in_page);
            let page = self
                .pages
                .entry(page_no)
                .or_insert_with(|| Box::new([0u8; PAGE]));
            page[in_page..in_page + n].copy_from_slice(&rest[..n]);
            cur += n;
            rest = &rest[n..];
        }
        self.len = self.len.max(offset + data.len());
        self.version += 1;
    }

    /// Replace the whole object with `data`, recycling page allocations.
    /// Pages the new contents cover are overwritten in place (tail
    /// zero-filled); pages beyond the new extent are dropped so sparse
    /// reads past the end still see zeros.
    fn replace(&mut self, data: &[u8]) {
        let npages = data.len().div_ceil(PAGE) as u32;
        // Drop pages past the new extent (split_off keeps the prefix).
        let tail = self.pages.split_off(&npages);
        drop(tail);
        for (i, chunk) in data.chunks(PAGE).enumerate() {
            let page = self
                .pages
                .entry(i as u32)
                .or_insert_with(|| Box::new([0u8; PAGE]));
            page[..chunk.len()].copy_from_slice(chunk);
            if chunk.len() < PAGE {
                page[chunk.len()..].fill(0);
            }
        }
        self.len = data.len();
        self.version += 1;
    }

    fn read_at(&self, offset: usize, len: usize) -> Vec<u8> {
        let mut out = vec![0u8; len];
        self.read_into(offset, &mut out);
        out
    }

    /// Fill `out` (already zeroed, `out.len()` bytes) from `offset`.
    fn read_into(&self, offset: usize, out: &mut [u8]) {
        let len = out.len();
        let mut cur = offset;
        let mut filled = 0;
        while filled < len {
            let page_no = (cur / PAGE) as u32;
            let in_page = cur % PAGE;
            let n = (len - filled).min(PAGE - in_page);
            if let Some(page) = self.pages.get(&page_no) {
                out[filled..filled + n].copy_from_slice(&page[in_page..in_page + n]);
            }
            cur += n;
            filled += n;
        }
    }
}

/// One OSD's (or one shard's) object store.
#[derive(Debug, Default, Clone)]
pub struct ObjectStore {
    objects: BTreeMap<ObjectId, StoredObject>,
    bytes_written: u64,
    bytes_read: u64,
}

impl ObjectStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Write (replace) a whole object; returns the new version.  An
    /// existing object's page allocations are reused rather than freed
    /// and reallocated — full-object overwrites (EC shards, replication
    /// full writes) are the store's hottest path.
    pub fn write(&mut self, id: ObjectId, data: Bytes) -> u64 {
        self.bytes_written += data.len() as u64;
        let obj = self.objects.entry(id).or_default();
        obj.replace(&data);
        obj.version
    }

    /// Partial overwrite at `offset`, extending the object if needed;
    /// returns the new version.
    pub fn write_at(&mut self, id: ObjectId, offset: usize, data: &[u8]) -> u64 {
        self.bytes_written += data.len() as u64;
        let obj = self.objects.entry(id).or_default();
        obj.write_at(offset, data);
        obj.version
    }

    /// Read the whole object.
    pub fn read(&mut self, id: ObjectId) -> Option<Bytes> {
        let obj = self.objects.get(&id)?;
        self.bytes_read += obj.len as u64;
        Some(Bytes::from(obj.read_at(0, obj.len)))
    }

    /// Read `len` bytes at `offset` (zero-filled past the end, like a
    /// sparse RBD object).
    pub fn read_at(&mut self, id: ObjectId, offset: usize, len: usize) -> Bytes {
        let mut out = Vec::new();
        self.read_at_into(id, offset, len, &mut out);
        Bytes::from(out)
    }

    /// [`ObjectStore::read_at`] into a caller-supplied buffer — the
    /// allocation-free form the engine's closed loop uses (`out` is
    /// resized to `len` and fully overwritten).
    pub fn read_at_into(&mut self, id: ObjectId, offset: usize, len: usize, out: &mut Vec<u8>) {
        self.bytes_read += len as u64;
        out.clear();
        out.resize(len, 0);
        if let Some(obj) = self.objects.get(&id) {
            obj.read_into(offset, out);
        }
    }

    /// Current version of an object (None if absent).
    pub fn version(&self, id: ObjectId) -> Option<u64> {
        self.objects.get(&id).map(|o| o.version)
    }

    /// Stored length of an object without counting a read (None if
    /// absent).
    pub fn peek_len(&self, id: ObjectId) -> Option<usize> {
        self.objects.get(&id).map(|o| o.len)
    }

    /// Remove an object.
    pub fn remove(&mut self, id: ObjectId) -> bool {
        self.objects.remove(&id).is_some()
    }

    /// Object count.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// (bytes_written, bytes_read) lifetime counters.
    pub fn io_counters(&self) -> (u64, u64) {
        (self.bytes_written, self.bytes_read)
    }

    /// Iterate object ids (scrub support).
    pub fn object_ids(&self) -> impl Iterator<Item = ObjectId> + '_ {
        self.objects.keys().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_version_cycle() {
        let mut s = ObjectStore::new();
        let id = ObjectId::new(1, 42);
        assert_eq!(s.write(id, Bytes::from_static(b"v1")), 1);
        assert_eq!(s.write(id, Bytes::from_static(b"v2")), 2);
        assert_eq!(&s.read(id).unwrap()[..], b"v2");
        assert_eq!(s.version(id), Some(2));
        assert!(s.remove(id));
        assert!(s.read(id).is_none());
    }

    #[test]
    fn write_replaces_whole_object() {
        let mut s = ObjectStore::new();
        let id = ObjectId::new(0, 9);
        s.write(id, Bytes::from(vec![0xAA; 10_000]));
        s.write(id, Bytes::from_static(b"short"));
        assert_eq!(s.peek_len(id), Some(5));
        assert_eq!(&s.read(id).unwrap()[..], b"short");
    }

    #[test]
    fn write_at_extends_and_overwrites() {
        let mut s = ObjectStore::new();
        let id = ObjectId::new(0, 1);
        s.write_at(id, 4, b"abcd");
        assert_eq!(&s.read(id).unwrap()[..], b"\0\0\0\0abcd");
        s.write_at(id, 0, b"XY");
        assert_eq!(&s.read(id).unwrap()[..], b"XY\0\0abcd");
        assert_eq!(s.version(id), Some(2));
    }

    #[test]
    fn sparse_high_offset_write_is_cheap() {
        let mut s = ObjectStore::new();
        let id = ObjectId::new(0, 3);
        // Write 4 KiB at the end of a 4 MiB object: only one page plus
        // bookkeeping may exist.
        s.write_at(id, 4 * 1024 * 1024 - 4096, &[7u8; 4096]);
        assert_eq!(s.peek_len(id), Some(4 * 1024 * 1024));
        let r = s.read_at(id, 4 * 1024 * 1024 - 4096, 4096);
        assert!(r.iter().all(|&b| b == 7));
        // Middle of the object reads zeros.
        let mid = s.read_at(id, 1024 * 1024, 64);
        assert!(mid.iter().all(|&b| b == 0));
    }

    #[test]
    fn cross_page_write_read() {
        let mut s = ObjectStore::new();
        let id = ObjectId::new(0, 4);
        let data: Vec<u8> = (0..10_000).map(|i| (i % 251) as u8).collect();
        s.write_at(id, 1000, &data);
        assert_eq!(&s.read_at(id, 1000, 10_000)[..], &data[..]);
    }

    #[test]
    fn read_at_is_sparse() {
        let mut s = ObjectStore::new();
        let id = ObjectId::new(0, 2);
        s.write(id, Bytes::from_static(b"hello"));
        let r = s.read_at(id, 3, 6);
        assert_eq!(&r[..], b"lo\0\0\0\0");
        // Absent object reads zeros.
        let r = s.read_at(ObjectId::new(0, 99), 0, 4);
        assert_eq!(&r[..], b"\0\0\0\0");
    }

    #[test]
    fn placement_seed_mixes_pools_and_names() {
        let a = ObjectId::new(1, 100).placement_seed();
        let b = ObjectId::new(1, 101).placement_seed();
        assert_ne!(a, b);
    }

    #[test]
    fn counters() {
        let mut s = ObjectStore::new();
        let id = ObjectId::new(0, 1);
        s.write(id, Bytes::from(vec![0u8; 100]));
        s.read(id);
        s.read_at(id, 0, 50);
        assert_eq!(s.io_counters(), (100, 150));
        assert_eq!(s.len(), 1);
    }
}
