#![warn(missing_docs)]

//! # deliba-cluster — the Ceph-like distributed storage substrate
//!
//! DeLiBA accelerates the *client side* of Ceph; to evaluate it we need
//! the rest of the cluster.  This crate provides a functional,
//! virtual-time model of the paper's testbed: "a single Ceph kernel
//! client and two remote servers, with each server housing 16 OSDs for a
//! total cluster of 32 OSDs" (§III-C1), with real data stored and
//! real CRUSH placement:
//!
//! * [`object`] — object identifiers and versioned object stores;
//! * [`osd`] — OSDs with service-time profiles and actual storage;
//! * [`pool`] — replicated (size = 3) and erasure-coded (k = 4, m = 2)
//!   pools, placement-group math;
//! * [`osdmap`] — the cluster map: epochs, CRUSH, OSD up/down states;
//! * [`cluster`] — the assembled cluster with its network topology and
//!   the full write/read pipelines (primary-copy replication, EC
//!   fan-out, degraded reads, scrub);
//! * [`rbd`] — RADOS Block Device image striping, the virtual-disk layer
//!   the UIFD's RBD driver exposes (§III-B).

pub mod cluster;
pub mod object;
pub mod osd;
pub mod osdmap;
pub mod pool;
pub mod rbd;
pub mod recovery;

pub use cluster::{Cluster, IoOutcome};
pub use object::{ObjectId, ObjectStore};
pub use osd::{Osd, OsdProfile};
pub use osdmap::OsdMap;
pub use pool::{PgId, PoolConfig, PoolKind};
pub use rbd::RbdImage;
pub use recovery::{PgHealth, RecoveryPolicy, RecoveryScheduler, RecoveryStats, ScrubTick};
