//! Profiling target: the reference perf workload in a long loop so a
//! sampling profiler (gprofng) gets enough samples.  Not part of the
//! harness; `cargo run --release --example profloop [iters]`.

use deliba_core::{Engine, EngineConfig, FioSpec, Generation, Mode, Pattern, RwMode};

fn main() {
    let iters: u32 = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(50);
    let spec = FioSpec::paper(RwMode::Read, Pattern::Rand, 4096, 5 * 4_000);
    let t0 = std::time::Instant::now();
    let mut events = 0u64;
    for _ in 0..iters {
        let cfg = EngineConfig::new(Generation::DeLiBAK, true, Mode::Replication);
        let mut e = Engine::new(cfg);
        let r = e.run_fio(&spec);
        assert_eq!(r.verify_failures, 0);
        events += e.events_executed();
    }
    let wall = t0.elapsed().as_secs_f64();
    println!("{} events in {:.3} s = {:.0} ev/s", events, wall, events as f64 / wall);
    {
        let cfg = EngineConfig::new(Generation::DeLiBAK, true, Mode::Replication);
        let mut e = Engine::new(cfg);
        e.run_fio(&spec);
        println!("cache: {:?}", e.placement_cache_stats());
    }
}
