//! Determinism gates for the parallel harness.
//!
//! The contract: `harness all --json` is byte-reproducible — across
//! runs, and across serial vs parallel sweep execution.  These tests
//! pin both properties at the library level (the CI perf-smoke job
//! additionally diffs whole-process output).

use deliba_bench::runner;
use deliba_core::{Engine, EngineConfig, FioSpec, Generation, Mode, Pattern, RwMode, TraceOp};
use deliba_fault::{FaultSchedule, ResiliencePolicy};
use deliba_net::LinkFaultProfile;
use deliba_qdma::DmaFaultProfile;
use deliba_sim::{SimDuration, SimTime};

/// Same seed, same config → bit-identical serialized `RunReport`.
#[test]
fn same_seed_reports_are_bit_identical() {
    let run = |g, mode, rw| {
        let mut e = Engine::new(EngineConfig::new(g, true, mode));
        let r = e.run_fio(&FioSpec::paper(rw, Pattern::Rand, 4096, 1_500));
        serde_json::to_string(&r).expect("serializable")
    };
    for (g, mode, rw) in [
        (Generation::DeLiBAK, Mode::Replication, RwMode::Write),
        (Generation::DeLiBAK, Mode::ErasureCoding, RwMode::Read),
        (Generation::DeLiBA2, Mode::Replication, RwMode::Read),
    ] {
        assert_eq!(
            run(g, mode, rw),
            run(g, mode, rw),
            "{g:?}/{mode:?}/{rw:?} must reproduce bit-identically"
        );
    }
}

/// Mid-trace faults do not break determinism: the same seed and the
/// same `FaultSchedule` produce a bit-identical serialized `RunReport`
/// — resilience counters included — run after run.
#[test]
fn chaos_run_with_same_seed_and_schedule_is_bit_identical() {
    let ms = |n: u64| SimTime::from_nanos(n * 1_000_000);
    let run = |mode| {
        let cfg = EngineConfig::new(Generation::DeLiBAK, true, mode)
            .with_resilience(ResiliencePolicy::default());
        let mut e = Engine::new(cfg);
        e.set_fault_schedule(
            FaultSchedule::new()
                .osd_flap(ms(1), 9, SimDuration::from_millis(3))
                .link_degrade(ms(2), LinkFaultProfile { drop_p: 0.15, corrupt_p: 0.05 })
                .link_restore(ms(6))
                .dma_degrade(
                    ms(4),
                    DmaFaultProfile { h2c_error_p: 0.1, c2h_error_p: 0.1, exhaust_p: 0.2 },
                )
                .dma_restore(ms(8))
                .card_outage(ms(10), SimDuration::from_millis(3)),
        );
        let mut ops = Vec::new();
        for i in 0..600u64 {
            ops.push(TraceOp::write(i * 4096, 4096, true));
        }
        for i in 0..600u64 {
            ops.push(TraceOp::read(i * 4096, 4096, true));
        }
        let r = e.run_trace(vec![ops], 4);
        assert_eq!(r.verify_failures, 0, "{mode:?}: corruption under chaos");
        let res = r.resilience.expect("chaos runs report resilience");
        assert!(res.retries > 0, "{mode:?}: the schedule must actually bite");
        serde_json::to_string(&r).expect("serializable")
    };
    for mode in [Mode::Replication, Mode::ErasureCoding] {
        assert_eq!(run(mode), run(mode), "{mode:?} chaos must replay bit-identically");
    }
}

/// The chaos experiment is a plain serial function, so `DELIBA_JOBS`
/// and the runner mode must not change a byte of its output — the same
/// guarantee CI pins for the whole harness binary.
#[test]
fn chaos_experiment_ignores_worker_count() {
    std::env::set_var("DELIBA_JOBS", "3");
    runner::set_serial(true);
    let serial = serde_json::to_string(&deliba_bench::chaos()).expect("serializable");
    runner::set_serial(false);
    let parallel = serde_json::to_string(&deliba_bench::chaos()).expect("serializable");
    std::env::remove_var("DELIBA_JOBS");
    assert_eq!(serial, parallel, "chaos output must not depend on worker count");
}

/// A representative sweep (Table II: 20 cells, five engine configs)
/// serializes byte-identically whether cells run on one thread or
/// several.  `DELIBA_JOBS` forces multiple workers even on single-core
/// runners so the parallel path is genuinely exercised.
#[test]
fn serial_and_parallel_sweeps_are_byte_identical() {
    std::env::set_var("DELIBA_JOBS", "3");
    runner::set_serial(true);
    let serial = serde_json::to_string(&deliba_bench::table2()).expect("serializable");
    runner::set_serial(false);
    let parallel = serde_json::to_string(&deliba_bench::table2()).expect("serializable");
    std::env::remove_var("DELIBA_JOBS");
    assert_eq!(serial, parallel, "sweep output must not depend on worker count");
}

/// Full-harness equivalent of the test above — every experiment in
/// `all`, serial vs 4 workers.  Minutes of runtime, so opt-in:
/// `cargo test -p deliba-bench --test determinism -- --ignored`.
#[test]
#[ignore = "minutes of runtime; run explicitly before perf-sensitive changes"]
fn full_harness_serial_vs_parallel() {
    let all = || -> String {
        let exps = vec![
            deliba_bench::table1(),
            deliba_bench::table2(),
            deliba_bench::table3(),
            deliba_bench::fig3(),
            deliba_bench::fig4(),
            deliba_bench::fig6(),
            deliba_bench::fig7(),
            deliba_bench::fig8(),
            deliba_bench::fig9(),
            deliba_bench::power(),
            deliba_bench::realworld(),
            deliba_bench::headline(),
            deliba_bench::dfx(),
            deliba_bench::ablation(),
            deliba_bench::mtu(),
            deliba_bench::breakdown(),
        ];
        serde_json::to_string_pretty(&exps).expect("serializable")
    };
    std::env::set_var("DELIBA_JOBS", "4");
    runner::set_serial(true);
    let serial = all();
    runner::set_serial(false);
    let parallel = all();
    std::env::remove_var("DELIBA_JOBS");
    assert_eq!(serial, parallel);
}
