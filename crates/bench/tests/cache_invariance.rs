//! Determinism gate for the placement cache: forcing the cache off via
//! `DELIBA_NO_PLACEMENT_CACHE` must not change a single byte of
//! experiment output.  The cache memoizes a pure function keyed by the
//! map epoch, so it can only change wall-clock time, never results.
//!
//! This lives in its own test binary (= its own process) because the
//! environment variable is process-global: flipping it mid-run would
//! race the other determinism tests, which serialize `RunReport`s whose
//! diagnostic counters legitimately differ with the cache off.

use deliba_core::{Engine, EngineConfig, FioSpec, Generation, Mode, Pattern, RwMode};

#[test]
fn experiment_json_is_identical_with_cache_disabled() {
    let sweep = || serde_json::to_string_pretty(&deliba_bench::table2()).expect("serializable");
    let enabled = sweep();
    std::env::set_var("DELIBA_NO_PLACEMENT_CACHE", "1");
    let disabled = sweep();
    std::env::remove_var("DELIBA_NO_PLACEMENT_CACHE");
    assert_eq!(
        enabled, disabled,
        "placement cache must be output-invariant (experiment JSON)"
    );
}

#[test]
fn modeled_timing_is_identical_with_cache_disabled() {
    // Stronger per-run check: everything except the diagnostic counters
    // matches field-for-field, and the counters prove which mode ran.
    let run = || {
        let mut e = Engine::new(EngineConfig::new(Generation::DeLiBAK, true, Mode::Replication));
        e.run_fio(&FioSpec::paper(RwMode::Read, Pattern::Rand, 4096, 2_000))
    };
    let on = run();
    std::env::set_var("DELIBA_NO_PLACEMENT_CACHE", "1");
    let off = run();
    std::env::remove_var("DELIBA_NO_PLACEMENT_CACHE");

    let on_counters = on.counters.expect("engine reports carry counters");
    let off_counters = off.counters.expect("engine reports carry counters");
    assert!(on_counters.cache_hits > 0, "cache was live: {on_counters:?}");
    assert_eq!(off_counters.cache_hits, 0, "cache was off: {off_counters:?}");

    let mut on_stripped = on.clone();
    let mut off_stripped = off.clone();
    on_stripped.counters = None;
    off_stripped.counters = None;
    assert_eq!(on_stripped, off_stripped, "modeled results must not depend on the cache");
}
