//! Engine-level gates for the telemetry plane.
//!
//! Three contracts: (1) the windowed series telescopes exactly to the
//! run's own accounting — window ops sum to the report's completions,
//! merged window histograms equal the run histogram, and annotations
//! mirror the fault plane's firings; (2) recording telemetry never
//! perturbs the simulation — a telemetry-on report minus its SLO
//! section is byte-identical to the telemetry-off report; (3) the
//! exported series is byte-identical across the thread matrix and the
//! sharded-queue toggle, because windows key off completion instants
//! and gauges sample at monotone pop times.

use deliba_core::{ArrivalOp, Engine, EngineConfig, Generation, Mode, TraceOp};
use deliba_fault::{FaultSchedule, ResiliencePolicy};
use deliba_net::LinkFaultProfile;
use deliba_sim::{InstantKind, SimDuration, SimTime, TelemetryConfig};

const THREAD_MATRIX: [usize; 3] = [1, 2, 8];

fn ms(n: u64) -> SimTime {
    SimTime::from_nanos(n * 1_000_000)
}

fn chaos_trace() -> Vec<TraceOp> {
    let mut ops = Vec::new();
    for i in 0..600u64 {
        ops.push(TraceOp::write(i * 4096, 4096, true));
        if i % 3 == 0 {
            ops.push(TraceOp::read(i * 4096, 4096, true));
        }
    }
    ops
}

fn chaos_schedule() -> FaultSchedule {
    FaultSchedule::new()
        .osd_flap(ms(1), 9, SimDuration::from_millis(2))
        .link_degrade(ms(2), LinkFaultProfile { drop_p: 0.1, corrupt_p: 0.02 })
        .link_restore(ms(4))
}

fn chaos_engine(telemetry: bool, threads: usize) -> Engine {
    let mut cfg = EngineConfig::new(Generation::DeLiBAK, true, Mode::Replication)
        .with_resilience(ResiliencePolicy::default())
        .with_sim_threads(threads);
    if telemetry {
        cfg = cfg.with_telemetry(TelemetryConfig::default());
    }
    let mut e = Engine::new(cfg);
    e.set_fault_schedule(chaos_schedule());
    e
}

/// Window counters telescope to the run's own accounting, and the
/// annotation stream mirrors the fault schedule's firings exactly.
#[test]
fn windows_telescope_to_report_totals() {
    let mut e = chaos_engine(true, 1);
    let report = e.run_trace(vec![chaos_trace()], 8);
    assert_eq!(report.verify_failures, 0);

    let run_hist = e.last_histogram().expect("telemetry retains the run histogram").clone();
    e.telemetry()
        .with(|r| {
            let win_ops: u64 = r.windows().iter().map(|w| w.ops).sum();
            assert_eq!(win_ops, r.total_ops(), "window ops must telescope");
            assert_eq!(r.total_ops(), run_hist.count(), "telemetry ops == report ops");
            assert_eq!(r.total_drops(), 0, "closed loops never drop at admission");
            assert_eq!(r.merged_histogram(), run_hist, "merged window hists == run hist");

            // The schedule fires exactly four instants, in firing
            // order: crash (1 ms), degrade (2 ms), the flap's revive
            // (3 ms), restore (4 ms).
            let kinds: Vec<InstantKind> = r.annotations().iter().map(|a| a.kind).collect();
            assert_eq!(
                kinds,
                vec![
                    InstantKind::OsdCrash,
                    InstantKind::LinkDegrade,
                    InstantKind::OsdRevive,
                    InstantKind::LinkRestore,
                ],
                "annotations mirror the fault plane's firings in order"
            );
            // Faults apply at the first event popped at-or-after
            // their scheduled instant, so the annotation stamps the
            // actual application time, not the schedule's.
            let crash = r.annotations()[0];
            assert!(crash.at >= ms(1) && crash.at < ms(2), "crash applied near 1 ms: {crash:?}");
            assert_eq!(crash.detail, 9, "the crash annotation carries the OSD id");
        })
        .expect("telemetry is on");

    let slo = report.slo.expect("telemetry-on runs report an SLO section");
    assert!(slo.windows > 0);
    assert_eq!(slo.total_ops, run_hist.count(), "no drops: SLO total == completions");
}

/// Recording telemetry is observation only: the report with its SLO
/// section stripped is byte-identical to a telemetry-off run.
#[test]
fn telemetry_never_perturbs_the_run() {
    let off = chaos_engine(false, 1).run_trace(vec![chaos_trace()], 8);
    let mut on = chaos_engine(true, 1).run_trace(vec![chaos_trace()], 8);
    assert!(off.slo.is_none(), "telemetry defaults off");
    assert!(on.slo.is_some(), "telemetry-on runs must report an SLO section");
    on.slo = None;
    assert_eq!(
        serde_json::to_string(&on).unwrap(),
        serde_json::to_string(&off).unwrap(),
        "telemetry changed the simulation"
    );
}

/// The exported series — timeline JSON, CSV, Prometheus, and the SLO
/// section — is byte-identical across {1, 2, 8} worker threads with
/// the sharded queue on and off, for both run loops.
#[test]
fn series_is_invariant_under_the_thread_matrix() {
    let stream: Vec<ArrivalOp> = (0..1_500u64)
        .map(|i| ArrivalOp {
            at: SimTime::from_nanos(i * 600),
            op: if i % 4 == 3 {
                TraceOp::read((i % 256) * 4096, 4096, true)
            } else {
                TraceOp::write((i % 256) * 4096, 4096, true)
            },
        })
        .collect();
    let run = |threads: usize| {
        // Closed loop under chaos.
        let mut e = chaos_engine(true, threads);
        let report = e.run_trace(vec![chaos_trace()], 8);
        let mut series = e
            .telemetry()
            .with(|r| (r.timeline_json(), r.csv(), r.prom_series("cfg", "closed")))
            .expect("telemetry is on");
        let closed_slo = serde_json::to_string(&report.slo).unwrap();
        // Open loop with admission drops.
        let cfg = EngineConfig::new(Generation::DeLiBAK, true, Mode::Replication)
            .with_sim_threads(threads)
            .with_telemetry(TelemetryConfig::default());
        let mut e = Engine::new(cfg);
        let out = e.run_open_loop(&stream, 8);
        assert!(out.point.dropped > 0, "the cap must actually drop arrivals");
        let open = e
            .telemetry()
            .with(|r| r.timeline_json())
            .expect("telemetry is on");
        series.0.push_str(&closed_slo);
        series.0.push_str(&open);
        series
    };
    let reference = run(1);
    for threads in THREAD_MATRIX {
        assert_eq!(run(threads), reference, "{threads} threads diverged from serial");
    }
    std::env::set_var("DELIBA_NO_SHARDED_QUEUE", "1");
    let single = run(8);
    std::env::remove_var("DELIBA_NO_SHARDED_QUEUE");
    assert_eq!(single, reference, "single-heap pooled series diverged");
}
