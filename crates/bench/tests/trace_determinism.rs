//! Flight-recorder determinism and telescoping invariants.
//!
//! * Same-seed runs emit byte-identical Chrome traces and Prometheus
//!   dumps — including the chaos cell, whose fault instants ride the
//!   deterministic fault plane.
//! * On a fault-free cell, every I/O's span chain is complete (all 11
//!   stages, contiguous, in critical-path order) and the per-I/O sums
//!   telescope exactly to the aggregate `StageBreakdown`.
//! * A disabled recorder is inert: the report is equal field-for-field
//!   to a run that never heard of tracing.
//! * The emitted Chrome JSON parses with the workspace's own JSON
//!   model and every B has its matching E, per (pid, tid) lane.

use deliba_bench::run_trace_cells;
use deliba_core::{Engine, EngineConfig, FioSpec, Generation, Mode, Pattern, RwMode};
use deliba_sim::{Stage, TraceDepth};
use serde::Value;

const PROBE_OPS: u64 = 400;

fn probe_spec() -> FioSpec {
    FioSpec::latency_probe(RwMode::Read, Pattern::Rand, 4096, PROBE_OPS)
}

#[test]
fn same_seed_runs_emit_byte_identical_exports() {
    let a = run_trace_cells(TraceDepth::Full);
    let b = run_trace_cells(TraceDepth::Full);
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.name, y.name);
        assert_eq!(x.chrome, y.chrome, "{}: chrome trace not reproducible", x.name);
        assert_eq!(x.prom, y.prom, "{}: prometheus dump not reproducible", x.name);
        assert_eq!(x.stats.held, y.stats.held, "{}", x.name);
        assert_eq!(x.stats.dropped, y.stats.dropped, "{}", x.name);
    }
}

#[test]
fn span_chains_telescope_exactly_to_the_breakdown() {
    // Fault-free cell: every op completes on its first attempt, so each
    // chain is one uninterrupted walk of the critical path.
    let cfg = EngineConfig::new(Generation::DeLiBAK, true, Mode::Replication)
        .with_tracing()
        .with_trace_depth(TraceDepth::Spans);
    let mut e = Engine::new(cfg);
    let r = e.run_fio(&probe_spec());
    let chains = e.trace().span_chains();
    assert_eq!(chains.len() as u64, r.ops, "one chain per I/O");

    for chain in &chains {
        assert_eq!(chain.spans.len(), Stage::COUNT, "io {}: all stages present", chain.io);
        for (expected, span) in Stage::ALL.iter().zip(&chain.spans) {
            assert_eq!(span.stage, *expected, "io {}: critical-path order", chain.io);
        }
        for w in chain.spans.windows(2) {
            assert_eq!(
                w[0].end_ns, w[1].begin_ns,
                "io {}: {} must hand off to {} with no gap",
                chain.io,
                w[0].stage.label(),
                w[1].stage.label()
            );
        }
    }

    // Per-stage means from the chains reproduce the aggregate breakdown
    // to f64 round-off, and the chain totals reproduce the mean.
    let b = r.breakdown.as_ref().expect("traced");
    let n = chains.len() as f64;
    for s in Stage::ALL {
        let from_chains = chains.iter().map(|c| c.span_ns(s)).sum::<u64>() as f64 / n / 1_000.0;
        let row = b.stage(s).mean_us;
        assert!(
            (from_chains - row).abs() < 1e-6,
            "{}: chains say {from_chains} µs, breakdown says {row} µs",
            s.label()
        );
    }
    let total = chains.iter().map(|c| c.total_ns()).sum::<u64>() as f64 / n / 1_000.0;
    assert!(
        (total - b.stage_sum_us).abs() < 1e-6,
        "chain totals {total} µs vs stage sum {} µs",
        b.stage_sum_us
    );
}

#[test]
fn disabled_recorder_is_inert() {
    let base = Engine::new(EngineConfig::new(Generation::DeLiBAK, true, Mode::Replication))
        .run_fio(&probe_spec());
    let mut off_engine = Engine::new(
        EngineConfig::new(Generation::DeLiBAK, true, Mode::Replication)
            .with_trace_depth(TraceDepth::Off),
    );
    let off = off_engine.run_fio(&probe_spec());
    assert!(!off_engine.trace().is_on());
    assert!(off_engine.trace().chrome_json().is_none());
    assert!(off_engine.trace().stats().is_none());
    assert!(off_engine.trace().span_chains().is_empty());
    assert_eq!(off, base, "an Off-depth run must be indistinguishable");

    // Recording must not perturb the modeled numbers either — only add
    // the breakdown section (a recording run always carries a tracer).
    let full = Engine::new(
        EngineConfig::new(Generation::DeLiBAK, true, Mode::Replication)
            .with_trace_depth(TraceDepth::Full),
    )
    .run_fio(&probe_spec());
    assert_eq!(full.mean_latency_us, base.mean_latency_us);
    assert_eq!(full.p99_latency_us, base.p99_latency_us);
    assert_eq!(full.throughput_mbps, base.throughput_mbps);
    assert_eq!(full.ops, base.ops);
    assert!(full.breakdown.is_some());
}

#[test]
fn chrome_json_parses_with_balanced_spans() {
    let cells = run_trace_cells(TraceDepth::Full);
    let chaos = cells.iter().find(|c| c.name == "dk-chaos-replication").unwrap();
    let v: Value = serde_json::from_str(&chaos.chrome).expect("chrome trace parses as JSON");
    let Some(Value::Array(events)) = v.get("traceEvents") else {
        panic!("traceEvents array missing");
    };
    assert!(!events.is_empty());
    let field = |e: &Value, k: &str| -> u64 {
        match e.get(k) {
            Some(Value::UInt(n)) => *n,
            other => panic!("{k} not a uint: {other:?}"),
        }
    };
    let name = |e: &Value| -> String {
        match e.get("name") {
            Some(Value::Str(s)) => s.clone(),
            other => panic!("name not a string: {other:?}"),
        }
    };
    let mut stacks: std::collections::BTreeMap<(u64, u64), Vec<String>> = Default::default();
    let mut metadata = 0;
    for e in events {
        let ph = match e.get("ph") {
            Some(Value::Str(s)) => s.as_str(),
            other => panic!("ph missing: {other:?}"),
        };
        match ph {
            "M" => metadata += 1,
            "B" => stacks
                .entry((field(e, "pid"), field(e, "tid")))
                .or_default()
                .push(name(e)),
            "E" => {
                let stack = stacks
                    .get_mut(&(field(e, "pid"), field(e, "tid")))
                    .expect("E without B");
                assert_eq!(stack.pop().as_deref(), Some(name(e).as_str()), "E matches its B");
            }
            "i" | "C" => {}
            other => panic!("unexpected phase {other}"),
        }
    }
    assert_eq!(metadata, 7, "one process_name record per layer");
    assert!(stacks.values().all(Vec::is_empty), "every B closed by run end");
}
