//! Thread-invariance gates for intra-run parallel execution.
//!
//! The contract: `DELIBA_SIM_THREADS` (or `with_sim_threads`) changes
//! wall-clock only — every `RunReport` the engine produces is
//! byte-identical at any worker count, with or without the sharded
//! event queue.  These tests pin that property in-process over the
//! paths where the prepare pipeline actually engages: closed-loop
//! write traces in both pool modes, chaos runs with mid-trace retries,
//! and open-loop runs with admission drops (which exercise pipeline
//! cancellation).

use deliba_core::{ArrivalOp, Engine, EngineConfig, FioSpec, Generation, Mode, Pattern, RwMode, TraceOp};
use deliba_fault::{FaultSchedule, ResiliencePolicy};
use deliba_net::LinkFaultProfile;
use deliba_qdma::DmaFaultProfile;
use deliba_sim::{SimDuration, SimTime};

const THREAD_MATRIX: [usize; 3] = [1, 2, 8];

/// Mixed write/read closed-loop trace — the bread-and-butter shape
/// where write payload preparation dominates.
fn mixed_trace() -> Vec<TraceOp> {
    let mut ops = Vec::new();
    for i in 0..400u64 {
        ops.push(TraceOp::write(i * 8192, 8192, true));
        if i % 3 == 0 {
            ops.push(TraceOp::read(i * 8192, 8192, true));
        }
    }
    ops
}

/// Closed-loop reports are byte-identical across the thread matrix in
/// both replication and erasure-coding modes (EC additionally covers
/// prepared-shard handoff to the card).
#[test]
fn closed_loop_reports_are_thread_invariant() {
    for mode in [Mode::Replication, Mode::ErasureCoding] {
        let run = |threads| {
            let cfg = EngineConfig::new(Generation::DeLiBAK, true, mode)
                .with_sim_threads(threads);
            let r = Engine::new(cfg).run_trace(vec![mixed_trace()], 8);
            assert_eq!(r.verify_failures, 0, "{mode:?}: checksum mismatch");
            serde_json::to_string(&r).expect("serializable")
        };
        let reference = run(1);
        for threads in THREAD_MATRIX {
            assert_eq!(
                run(threads),
                reference,
                "{mode:?}: {threads} threads diverged from serial"
            );
        }
    }
}

/// The fio front-end (multi-job random write, the paper's workload
/// shape) is thread-invariant — this drives `run_trace` with several
/// jobs, so prepared slots interleave across job streams.
#[test]
fn fio_reports_are_thread_invariant() {
    let run = |threads| {
        let cfg = EngineConfig::new(Generation::DeLiBAK, true, Mode::Replication)
            .with_sim_threads(threads);
        let r = Engine::new(cfg).run_fio(&FioSpec::paper(RwMode::Write, Pattern::Rand, 4096, 900));
        serde_json::to_string(&r).expect("serializable")
    };
    let reference = run(1);
    for threads in THREAD_MATRIX {
        assert_eq!(run(threads), reference, "{threads} threads diverged from serial");
    }
}

/// Chaos runs — retries regenerate payloads inline after the prepared
/// slot is consumed — stay byte-identical at every worker count.
#[test]
fn chaos_reports_are_thread_invariant() {
    let ms = |n: u64| SimTime::from_nanos(n * 1_000_000);
    let run = |mode, threads| {
        let cfg = EngineConfig::new(Generation::DeLiBAK, true, mode)
            .with_resilience(ResiliencePolicy::default())
            .with_sim_threads(threads);
        let mut e = Engine::new(cfg);
        e.set_fault_schedule(
            FaultSchedule::new()
                .osd_flap(ms(1), 9, SimDuration::from_millis(3))
                .link_degrade(ms(2), LinkFaultProfile { drop_p: 0.15, corrupt_p: 0.05 })
                .link_restore(ms(6))
                .dma_degrade(
                    ms(4),
                    DmaFaultProfile { h2c_error_p: 0.1, c2h_error_p: 0.1, exhaust_p: 0.2 },
                )
                .dma_restore(ms(8))
                .card_outage(ms(10), SimDuration::from_millis(3)),
        );
        let mut ops = Vec::new();
        for i in 0..500u64 {
            ops.push(TraceOp::write(i * 4096, 4096, true));
        }
        for i in 0..500u64 {
            ops.push(TraceOp::read(i * 4096, 4096, true));
        }
        let r = e.run_trace(vec![ops], 4);
        assert_eq!(r.verify_failures, 0, "{mode:?}: corruption under chaos");
        let res = r.resilience.expect("chaos runs report resilience");
        assert!(res.retries > 0, "{mode:?}: the schedule must actually bite");
        serde_json::to_string(&r).expect("serializable")
    };
    for mode in [Mode::Replication, Mode::ErasureCoding] {
        let reference = run(mode, 1);
        for threads in THREAD_MATRIX {
            assert_eq!(
                run(mode, threads),
                reference,
                "{mode:?}: {threads} threads diverged from serial under chaos"
            );
        }
    }
}

/// Open-loop runs with a tight admission cap — dropped arrivals make
/// the pipeline skip slots via `advance` — are thread-invariant, drop
/// accounting included.
#[test]
fn open_loop_reports_are_thread_invariant() {
    let stream: Vec<ArrivalOp> = (0..1_200u64)
        .map(|i| ArrivalOp {
            at: SimTime::from_nanos(i * 700),
            op: if i % 4 == 3 {
                TraceOp::read((i % 256) * 4096, 4096, true)
            } else {
                TraceOp::write((i % 256) * 4096, 4096, true)
            },
        })
        .collect();
    let run = |threads| {
        let cfg = EngineConfig::new(Generation::DeLiBAK, true, Mode::Replication)
            .with_sim_threads(threads);
        let out = Engine::new(cfg).run_open_loop(&stream, 8);
        (format!("{out:?}"), out.point.dropped)
    };
    let (reference, dropped) = run(1);
    assert!(dropped > 0, "cap of 8 must actually drop arrivals");
    for threads in THREAD_MATRIX {
        assert_eq!(run(threads).0, reference, "{threads} threads diverged from serial");
    }
}

/// The single-heap fallback (`DELIBA_NO_SHARDED_QUEUE=1`) composes
/// with the thread matrix: all four corners — {sharded, single-heap} ×
/// {serial, pooled} — produce the same results.  The window-stats
/// counters are the one *intentional* difference (they describe the
/// execution strategy, and a single heap opens no windows), so they
/// are asserted separately and zeroed before the byte comparison.
/// Env manipulation stays inside this one test; the other tests in
/// this binary are immune to a leaked flag anyway, because sharded
/// on/off is result-invariant.
#[test]
fn sharded_queue_toggle_composes_with_thread_matrix() {
    let run = |threads| {
        let cfg = EngineConfig::new(Generation::DeLiBAK, true, Mode::ErasureCoding)
            .with_sim_threads(threads);
        let mut r = Engine::new(cfg).run_trace(vec![mixed_trace()], 8);
        let windows = r.counters.map_or(0, |c| c.windows);
        if let Some(c) = r.counters.as_mut() {
            c.windows = 0;
            c.window_events = 0;
            c.window_width_ns = 0;
        }
        (serde_json::to_string(&r).expect("serializable"), windows)
    };
    let (reference, sharded_windows) = run(1);
    assert!(sharded_windows > 0, "sharded runs must report window stats");
    std::env::set_var("DELIBA_NO_SHARDED_QUEUE", "1");
    let (single_serial, single_windows) = run(1);
    let single_pool = run(8).0;
    std::env::remove_var("DELIBA_NO_SHARDED_QUEUE");
    let sharded_pool = run(8).0;
    assert_eq!(single_windows, 0, "single-heap runs open no windows");
    assert_eq!(single_serial, reference, "single-heap serial diverged");
    assert_eq!(single_pool, reference, "single-heap pooled diverged");
    assert_eq!(sharded_pool, reference, "sharded pooled diverged");
}
