//! Determinism gates for `harness loadcurve`.
//!
//! The contract mirrors `harness all`: the sweep's serialized output —
//! the per-generation `RunReport`s with their `load_curve` sections —
//! is byte-reproducible run to run, and identical whether the
//! (generation × rate) combos run on one worker thread or several.

use deliba_bench::{loadcurve_with, runner, LoadCurveOpts};

/// A small sweep that still crosses every generation's knee, so the
/// determinism check covers the saturated regime (backlogged admission
/// queue, nonzero drops) and not just the easy flat region.
fn small_opts() -> LoadCurveOpts {
    LoadCurveOpts {
        rates_kiops: vec![2.0, 16.0, 128.0],
        admission_cap: 64,
        ops_per_point: 800,
        ..Default::default()
    }
}

fn sweep_json() -> String {
    let (exp, reports) = loadcurve_with(&small_opts());
    // Both harness output shapes: the text-table cells and the JSON
    // reports must each reproduce.
    serde_json::to_string_pretty(&exp).expect("serializable")
        + &serde_json::to_string_pretty(&reports).expect("serializable")
}

/// Same seed, same opts → bit-identical serialized sweep.
#[test]
fn same_seed_sweeps_are_bit_identical() {
    assert_eq!(sweep_json(), sweep_json());
}

/// Worker count is invisible in the bytes: `par_map` over the
/// (generation × rate) combos must return results in combo order
/// regardless of scheduling.
#[test]
fn serial_and_parallel_sweeps_are_byte_identical() {
    std::env::set_var("DELIBA_JOBS", "3");
    runner::set_serial(true);
    let serial = sweep_json();
    runner::set_serial(false);
    let parallel = sweep_json();
    std::env::remove_var("DELIBA_JOBS");
    assert_eq!(serial, parallel, "loadcurve output must not depend on worker count");
}

/// The curves carry the shape the methodology promises: a `load_curve`
/// section per generation, points in sweep order, drops only past
/// saturation, and a visible knee (p99 at the top of the sweep at least
/// 5× the unloaded p99).
#[test]
fn curves_have_sections_points_and_a_knee() {
    let (_, reports) = loadcurve_with(&small_opts());
    assert_eq!(reports.len(), 3, "one report per generation");
    for r in &reports {
        let curve = r.load_curve.as_ref().expect("loadcurve reports carry the section");
        assert_eq!(curve.arrival, "poisson");
        assert_eq!(curve.points.len(), 3);
        assert!(
            curve.points.windows(2).all(|w| w[0].offered_kiops < w[1].offered_kiops),
            "points stay in sweep order"
        );
        let (lo, hi) = (&curve.points[0], &curve.points[curve.points.len() - 1]);
        assert_eq!(lo.dropped, 0, "{}: drops below the knee", r.config);
        assert!(hi.dropped > 0, "{}: top of sweep must sit past saturation", r.config);
        assert!(
            hi.p99_us >= 5.0 * lo.p99_us,
            "{}: no knee — p99 {} µs at {} KIOPS vs {} µs at {} KIOPS",
            r.config,
            hi.p99_us,
            hi.offered_kiops,
            lo.p99_us,
            lo.offered_kiops
        );
    }
}
