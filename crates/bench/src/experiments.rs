//! The experiments: every table and figure of the paper, regenerated.

use deliba_core::{Engine, EngineConfig, FioSpec, Generation, Mode, Pattern, RunReport, RwMode};
use deliba_fpga::accel::{table_i, AccelKind, TABLE_I};
use deliba_fpga::{ACCEL_CLOCK, PowerModel, RmId};
use deliba_workload::{OlapSpec, OltpSpec};
use serde::Serialize;

/// Default op budget per figure cell (enough for steady state, cheap
/// enough that the full harness runs in seconds).
pub const CELL_OPS: u64 = 4_000;

/// Latency-probe op budget (qd = 1).
pub const PROBE_OPS: u64 = 400;

/// One measured cell with its paper reference value (when the paper
/// states one).
#[derive(Debug, Clone, Serialize)]
pub struct Cell {
    /// Configuration label (e.g. "DeLiBA-K").
    pub config: String,
    /// Workload label (e.g. "rand-write 4k").
    pub workload: String,
    /// Metric unit ("µs", "MB/s", "KIOPS", "W", "s", "%").
    pub unit: &'static str,
    /// Value measured by the reproduction.
    pub measured: f64,
    /// Value the paper reports, if stated.
    pub paper: Option<f64>,
}

impl Cell {
    /// Relative error against the paper value.
    pub fn error(&self) -> Option<f64> {
        self.paper.map(|p| (self.measured - p) / p)
    }

    /// Printable row.
    pub fn row(&self) -> String {
        match self.paper {
            Some(p) if p != 0.0 => format!(
                "{:<28} {:<18} measured {:>9.1} {:<5} paper {:>9.1}  ({:+.1} %)",
                self.config,
                self.workload,
                self.measured,
                self.unit,
                p,
                100.0 * self.error().unwrap()
            ),
            Some(p) => format!(
                "{:<28} {:<18} measured {:>9.1} {:<5} paper {:>9.1}",
                self.config, self.workload, self.measured, self.unit, p
            ),
            None => format!(
                "{:<28} {:<18} measured {:>9.1} {:<5}",
                self.config, self.workload, self.measured, self.unit
            ),
        }
    }
}

/// A complete experiment: id, caption and cells.
#[derive(Debug, Clone, Serialize)]
pub struct Experiment {
    /// Paper artifact id, e.g. "Fig. 6".
    pub id: String,
    /// Short caption.
    pub caption: String,
    /// The cells.
    pub cells: Vec<Cell>,
}

impl Experiment {
    /// Print the experiment as a text block.
    pub fn print(&self) {
        println!("== {} — {}", self.id, self.caption);
        for c in &self.cells {
            println!("  {}", c.row());
        }
        println!();
    }

    /// Look up a measured value by config/workload substring.
    pub fn get(&self, config: &str, workload: &str) -> Option<f64> {
        self.cells
            .iter()
            .find(|c| c.config.contains(config) && c.workload == workload)
            .map(|c| c.measured)
    }
}

fn run(cfg: EngineConfig, spec: FioSpec) -> RunReport {
    let mut e = Engine::new(cfg);
    let r = e.run_fio(&spec);
    assert_eq!(e.verify_failures(), 0, "data corruption in {:?}", spec.label());
    r
}

fn gen_name(g: Generation) -> String {
    g.label().to_string()
}

// ---------------------------------------------------------------------
// Software baselines (Figs. 3 and 4)
// ---------------------------------------------------------------------

fn sw_baseline(mode: Mode, id: &str) -> Experiment {
    // Paper anchor values quoted in §III-C2 (4 kB random):
    // latency 130→85 µs (read) and 98→80 µs (write); EC throughput
    // ratios ×2.4 (read) ×2.88 (write).
    let mut combos = Vec::new();
    for g in [Generation::DeLiBA2, Generation::DeLiBAK] {
        for (rw, pat, bs) in [
            (RwMode::Read, Pattern::Rand, 4096u32),
            (RwMode::Write, Pattern::Rand, 4096),
            (RwMode::Read, Pattern::Seq, 131072),
            (RwMode::Write, Pattern::Seq, 131072),
        ] {
            combos.push((g, rw, pat, bs));
        }
    }
    let cells: Vec<Cell> = crate::runner::par_map(combos, |(g, rw, pat, bs)| {
        let cfg = EngineConfig::new(g, false, mode);
        let probe = run(cfg, FioSpec::latency_probe(rw, pat, bs, PROBE_OPS));
        let paper_lat = match (g, rw, pat, mode) {
            (Generation::DeLiBA2, RwMode::Read, Pattern::Rand, _) => Some(130.0),
            (Generation::DeLiBA2, RwMode::Write, Pattern::Rand, _) => Some(98.0),
            (Generation::DeLiBAK, RwMode::Read, Pattern::Rand, _) => Some(85.0),
            (Generation::DeLiBAK, RwMode::Write, Pattern::Rand, _) => Some(80.0),
            _ => None,
        };
        let tput = run(cfg, FioSpec::paper(rw, pat, bs, CELL_OPS.min(2_000)));
        [
            Cell {
                config: format!("{}-SW", gen_name(g)),
                workload: probe.workload.clone(),
                unit: "µs",
                measured: probe.mean_latency_us,
                paper: paper_lat,
            },
            Cell {
                config: format!("{}-SW", gen_name(g)),
                workload: tput.workload.clone(),
                unit: "MB/s",
                measured: tput.throughput_mbps,
                paper: None,
            },
        ]
    })
    .into_iter()
    .flatten()
    .collect();
    Experiment {
        id: id.to_string(),
        caption: format!(
            "pure software baseline, {} mode: latency and throughput (4 kB / 128 kB)",
            mode.label()
        ),
        cells,
    }
}

/// Fig. 3: software baseline, replication mode.
pub fn fig3() -> Experiment {
    sw_baseline(Mode::Replication, "Fig. 3")
}

/// Fig. 4: software baseline, erasure-coding mode.
pub fn fig4() -> Experiment {
    sw_baseline(Mode::ErasureCoding, "Fig. 4")
}

// ---------------------------------------------------------------------
// Hardware throughput / KIOPS (Figs. 6–9)
// ---------------------------------------------------------------------

/// Paper anchor values for Fig. 6 (replication throughput, MB/s).
fn fig6_paper(g: Generation, rw: RwMode, pat: Pattern, bs: u32) -> Option<f64> {
    match (g, rw, pat, bs) {
        (Generation::DeLiBAK, RwMode::Write, Pattern::Rand, 4096) => Some(145.0),
        (Generation::DeLiBAK, RwMode::Write, Pattern::Rand, 8192) => Some(170.0),
        (Generation::DeLiBAK, RwMode::Write, Pattern::Seq, 65536) => Some(440.0),
        (Generation::DeLiBAK, RwMode::Write, Pattern::Seq, 131072) => Some(680.0),
        (Generation::DeLiBA2, RwMode::Write, Pattern::Rand, 4096) => Some(145.0 / 3.45),
        (Generation::DeLiBA2, RwMode::Write, Pattern::Rand, 8192) => Some(170.0 / 2.5),
        (Generation::DeLiBA2, RwMode::Write, Pattern::Seq, 65536) => Some(440.0 / 2.38),
        (Generation::DeLiBA2, RwMode::Write, Pattern::Seq, 131072) => Some(680.0 / 2.0),
        _ => None,
    }
}

fn hw_sweep(mode: Mode, gens: &[Generation], id: &str, caption: &str, kiops: bool) -> Experiment {
    let mut combos = Vec::new();
    for &g in gens {
        for (rw, pat) in [
            (RwMode::Read, Pattern::Seq),
            (RwMode::Read, Pattern::Rand),
            (RwMode::Write, Pattern::Seq),
            (RwMode::Write, Pattern::Rand),
        ] {
            for bs in [4096u32, 8192, 65536, 131072] {
                combos.push((g, rw, pat, bs));
            }
        }
    }
    let cells = crate::runner::par_map(combos, |(g, rw, pat, bs)| {
        let cfg = EngineConfig::new(g, true, mode);
        let r = run(cfg, FioSpec::paper(rw, pat, bs, CELL_OPS));
        let paper = if !kiops && mode == Mode::Replication {
            fig6_paper(g, rw, pat, bs)
        } else if kiops && mode == Mode::Replication && g == Generation::DeLiBAK
            && rw == RwMode::Read && pat == Pattern::Rand && bs == 4096
        {
            Some(59.0) // §VI: "our 59K IOPS"
        } else {
            None
        };
        Cell {
            config: gen_name(g),
            workload: r.workload.clone(),
            unit: if kiops { "KIOPS" } else { "MB/s" },
            measured: if kiops { r.kiops } else { r.throughput_mbps },
            paper,
        }
    });
    Experiment {
        id: id.to_string(),
        caption: caption.to_string(),
        cells,
    }
}

/// Fig. 6: hardware-accelerated replication throughput, D1/D2/DK.
pub fn fig6() -> Experiment {
    hw_sweep(
        Mode::Replication,
        &[Generation::DeLiBA1, Generation::DeLiBA2, Generation::DeLiBAK],
        "Fig. 6",
        "replication mode: hardware-accelerated I/O throughput",
        false,
    )
}

/// Fig. 7: hardware-accelerated replication KIOPS, D1/D2/DK.
pub fn fig7() -> Experiment {
    hw_sweep(
        Mode::Replication,
        &[Generation::DeLiBA1, Generation::DeLiBA2, Generation::DeLiBAK],
        "Fig. 7",
        "replication mode: hardware-accelerated KIOPS",
        true,
    )
}

/// Fig. 8: hardware-accelerated EC throughput, D2 vs DK.
pub fn fig8() -> Experiment {
    hw_sweep(
        Mode::ErasureCoding,
        &[Generation::DeLiBA2, Generation::DeLiBAK],
        "Fig. 8",
        "erasure-coding mode: hardware-accelerated I/O throughput",
        false,
    )
}

/// Fig. 9: hardware-accelerated EC KIOPS, D2 vs DK.
pub fn fig9() -> Experiment {
    hw_sweep(
        Mode::ErasureCoding,
        &[Generation::DeLiBA2, Generation::DeLiBAK],
        "Fig. 9",
        "erasure-coding mode: hardware-accelerated KIOPS",
        true,
    )
}

// ---------------------------------------------------------------------
// Table I: accelerator kernels
// ---------------------------------------------------------------------

/// Table I: per-kernel profile — paper columns plus the model's computed
/// cycle latency.
pub fn table1() -> Experiment {
    let mut cells = Vec::new();
    for row in TABLE_I {
        let name = format!("{:?}", row.kind);
        cells.push(Cell {
            config: name.clone(),
            workload: "SW exec".into(),
            unit: "µs",
            measured: row.sw_exec_us, // input datum, carried through
            paper: Some(row.sw_exec_us),
        });
        cells.push(Cell {
            config: name.clone(),
            workload: "RTL cycles".into(),
            unit: "cyc",
            measured: row.rtl_cycles.1 as f64,
            paper: Some(row.rtl_cycles.1 as f64),
        });
        // Model-computed pipeline latency at 235 MHz vs the paper's
        // Vivado-reported value.
        let model_lat = ACCEL_CLOCK.cycles(row.rtl_cycles.1).as_micros_f64();
        cells.push(Cell {
            config: name.clone(),
            workload: "RTL latency".into(),
            unit: "µs",
            measured: model_lat,
            paper: Some(row.rtl_latency_us.1),
        });
        cells.push(Cell {
            config: name,
            workload: "HW exec (measured on U280)".into(),
            unit: "µs",
            measured: row.hw_exec_us,
            paper: Some(row.hw_exec_us),
        });
    }
    Experiment {
        id: "Table I".into(),
        caption: "replication and EC kernels: software profile, RTL cycles/latency, device wall time".into(),
        cells,
    }
}

// ---------------------------------------------------------------------
// Table II: 4 kB latency
// ---------------------------------------------------------------------

/// Paper Table II values, µs.
pub fn table2_paper(g: Generation, mode: Mode, rw: RwMode, pat: Pattern) -> Option<f64> {
    use Generation::*;
    use Mode::*;
    use Pattern::*;
    use RwMode::*;
    let v = match (g, mode, rw, pat) {
        (DeLiBA1, Replication, Read, Seq) => 65.0,
        (DeLiBA1, Replication, Write, Seq) => 95.0,
        (DeLiBA1, Replication, Read, Rand) => 130.0,
        (DeLiBA1, Replication, Write, Rand) => 98.0,
        (DeLiBA2, Replication, Read, Seq) => 55.0,
        (DeLiBA2, Replication, Write, Seq) => 75.0,
        (DeLiBA2, Replication, Read, Rand) => 85.0,
        (DeLiBA2, Replication, Write, Rand) => 82.0,
        (DeLiBAK, Replication, Read, Seq) => 40.0,
        (DeLiBAK, Replication, Write, Seq) => 52.0,
        (DeLiBAK, Replication, Read, Rand) => 64.0,
        (DeLiBAK, Replication, Write, Rand) => 68.0,
        (DeLiBA2, ErasureCoding, Read, Seq) => 48.0,
        (DeLiBA2, ErasureCoding, Write, Seq) => 70.0,
        (DeLiBA2, ErasureCoding, Read, Rand) => 82.0,
        (DeLiBA2, ErasureCoding, Write, Rand) => 75.0,
        (DeLiBAK, ErasureCoding, Read, Seq) => 38.0,
        (DeLiBAK, ErasureCoding, Write, Seq) => 47.0,
        (DeLiBAK, ErasureCoding, Read, Rand) => 59.0,
        (DeLiBAK, ErasureCoding, Write, Rand) => 60.0,
        _ => return None,
    };
    Some(v)
}

/// Table II: I/O request latency at 4 kB across generations and modes.
pub fn table2() -> Experiment {
    let rows: [(Generation, Mode); 5] = [
        (Generation::DeLiBA1, Mode::Replication),
        (Generation::DeLiBA2, Mode::Replication),
        (Generation::DeLiBAK, Mode::Replication),
        (Generation::DeLiBA2, Mode::ErasureCoding),
        (Generation::DeLiBAK, Mode::ErasureCoding),
    ];
    let mut combos = Vec::new();
    for (g, mode) in rows {
        for (rw, pat) in [
            (RwMode::Read, Pattern::Seq),
            (RwMode::Write, Pattern::Seq),
            (RwMode::Read, Pattern::Rand),
            (RwMode::Write, Pattern::Rand),
        ] {
            combos.push((g, mode, rw, pat));
        }
    }
    let cells = crate::runner::par_map(combos, |(g, mode, rw, pat)| {
        let cfg = EngineConfig::new(g, true, mode);
        let r = run(cfg, FioSpec::latency_probe(rw, pat, 4096, PROBE_OPS));
        Cell {
            config: format!("{} ({})", gen_name(g), mode.label()),
            workload: r.workload.clone(),
            unit: "µs",
            measured: r.mean_latency_us,
            paper: table2_paper(g, mode, rw, pat),
        }
    });
    Experiment {
        id: "Table II".into(),
        caption: "I/O request latency (4 kB), hardware-accelerated".into(),
        cells,
    }
}

// ---------------------------------------------------------------------
// Table III: resource utilization
// ---------------------------------------------------------------------

/// Table III: place-and-route resource utilization.
pub fn table3() -> Experiment {
    use deliba_fpga::resources::*;
    let mut cells = Vec::new();
    let statics = [
        ("Straw Bucket (static)", STRAW_STATIC, 6.2),
        ("Straw2 Bucket (static)", STRAW2_STATIC, 6.31),
        ("Reed-Solomon Encoder (static)", RS_ENCODER_STATIC, 7.08),
    ];
    for (name, res, paper_lut_pct) in statics {
        let (lut_pct, ..) = res.percent_of(&U280_TOTAL);
        cells.push(Cell {
            config: name.into(),
            workload: "LUT % of U280".into(),
            unit: "%",
            measured: lut_pct,
            paper: Some(paper_lut_pct),
        });
        cells.push(Cell {
            config: name.into(),
            workload: "LUT count".into(),
            unit: "",
            measured: res.luts as f64,
            paper: Some(res.luts as f64),
        });
    }
    let rms = [
        ("RM 1 List (DFX, SLR0)", RmId::List, 14.74),
        ("RM 2 Tree (DFX, SLR0)", RmId::Tree, 15.93),
        ("RM 3 Uniform (DFX, SLR0)", RmId::Uniform, 17.59),
    ];
    for (name, rm, paper_pct) in rms {
        let (lut_pct, ..) = rm.resources().percent_of(&SLR0);
        cells.push(Cell {
            config: name.into(),
            workload: "LUT % of SLR0".into(),
            unit: "%",
            measured: lut_pct,
            paper: Some(paper_pct),
        });
    }
    Experiment {
        id: "Table III".into(),
        caption: "resource utilization: static accelerators + DFX reconfigurable modules".into(),
        cells,
    }
}

// ---------------------------------------------------------------------
// §V-c: power
// ---------------------------------------------------------------------

/// §V-c power measurements: full load with and without DFX.
pub fn power() -> Experiment {
    let p = PowerModel::default();
    Experiment {
        id: "§V-c".into(),
        caption: "power at full load (xbutil/xbtest methodology)".into(),
        cells: vec![
            Cell {
                config: "full load, no partial reconfig".into(),
                workload: "all RMs resident".into(),
                unit: "W",
                measured: p.full_load_static_w(),
                paper: Some(195.0),
            },
            Cell {
                config: "full load, with DFX".into(),
                workload: "one RM resident".into(),
                unit: "W",
                measured: p.full_load_dfx_w(),
                paper: Some(170.0),
            },
            Cell {
                config: "idle".into(),
                workload: "clocks only".into(),
                unit: "W",
                measured: p.idle_w(),
                paper: None,
            },
        ],
    }
}

// ---------------------------------------------------------------------
// Real-world workloads (§I, §III-C1)
// ---------------------------------------------------------------------

/// §I real-world claim: ≈30 % execution-time reduction for OLAP/OLTP.
pub fn realworld() -> Experiment {
    // Dependent I/O within a query/transaction: shallow queues.  One
    // cell per (workload, generation) pair, each with its own engine.
    let mut runs = Vec::new();
    for (name, qd) in [("OLAP", 2u32), ("OLTP", 4)] {
        for g in [Generation::DeLiBA2, Generation::DeLiBAK] {
            runs.push((name, qd, g));
        }
    }
    let times = crate::runner::par_map(runs, |(name, qd, g)| {
        let jobs = match name {
            "OLAP" => OlapSpec::default().generate(),
            _ => OltpSpec::default().generate(),
        };
        let mut e = Engine::new(EngineConfig::new(g, true, Mode::Replication));
        let r = e.run_trace(jobs, qd);
        assert_eq!(e.verify_failures(), 0);
        r.window_s
    });
    let mut cells = Vec::new();
    for (w, name) in ["OLAP", "OLTP"].into_iter().enumerate() {
        let (d2, dk) = (times[2 * w], times[2 * w + 1]);
        for (g, t) in [(Generation::DeLiBA2, d2), (Generation::DeLiBAK, dk)] {
            cells.push(Cell {
                config: gen_name(g),
                workload: format!("{name} execution time"),
                unit: "s",
                measured: t,
                paper: None,
            });
        }
        cells.push(Cell {
            config: "DeLiBA-K vs D2".into(),
            workload: format!("{name} time reduction"),
            unit: "%",
            measured: 100.0 * (d2 - dk) / d2,
            paper: Some(30.0),
        });
    }
    Experiment {
        id: "§I real-world".into(),
        caption: "OLAP/OLTP execution-time reduction (paper: ≈30 %)".into(),
        cells,
    }
}

// ---------------------------------------------------------------------
// Headline speedups (§I)
// ---------------------------------------------------------------------

/// §I headline: up to 3.2× IOPS and 3.45× throughput over DeLiBA-2.
pub fn headline() -> Experiment {
    // The sweep covers exactly the cells the paper's figures report
    // (rand-read/-write at small blocks, seq-write at large blocks).
    let specs = vec![
        (RwMode::Read, Pattern::Rand, 4096u32),
        (RwMode::Write, Pattern::Rand, 4096),
        (RwMode::Write, Pattern::Rand, 8192),
        (RwMode::Write, Pattern::Seq, 65536),
        (RwMode::Write, Pattern::Seq, 131072),
    ];
    let ratios = crate::runner::par_map(specs, |(rw, pat, bs)| {
        let dk = run(
            EngineConfig::new(Generation::DeLiBAK, true, Mode::Replication),
            FioSpec::paper(rw, pat, bs, CELL_OPS),
        );
        let d2 = run(
            EngineConfig::new(Generation::DeLiBA2, true, Mode::Replication),
            FioSpec::paper(rw, pat, bs, CELL_OPS),
        );
        (dk.kiops / d2.kiops, dk.throughput_mbps / d2.throughput_mbps)
    });
    let mut best_iops = 0.0f64;
    let mut best_tput = 0.0f64;
    for (ri, rt) in ratios {
        best_iops = best_iops.max(ri);
        best_tput = best_tput.max(rt);
    }
    Experiment {
        id: "§I headline".into(),
        caption: "peak speedups of DeLiBA-K over DeLiBA-2".into(),
        cells: vec![
            Cell {
                config: "DeLiBA-K / D2".into(),
                workload: "peak IOPS speedup".into(),
                unit: "x",
                measured: best_iops,
                paper: Some(3.2),
            },
            Cell {
                config: "DeLiBA-K / D2".into(),
                workload: "peak throughput speedup".into(),
                unit: "x",
                measured: best_tput,
                paper: Some(3.45),
            },
        ],
    }
}

// ---------------------------------------------------------------------
// §IV-C: DFX live reconfiguration
// ---------------------------------------------------------------------

/// §IV-C: swap the bucket accelerator during a live workload; I/O keeps
/// flowing (Straw2 fallback), no placement errors, and the swap beats a
/// full reprogram + power cycle by orders of magnitude.
pub fn dfx() -> Experiment {
    use deliba_sim::SimTime;
    let mut cfg = EngineConfig::new(Generation::DeLiBAK, true, Mode::Replication);
    // The cluster is being reorganized: the operator swaps the partition
    // to the Tree kernel while I/O prefers it; placements issued mid-swap
    // fall back to the static Straw2 kernel.
    cfg.preferred_rm = Some(RmId::Tree);
    let mut e = Engine::new(cfg);
    let done = e
        .card_mut()
        .expect("HW config")
        .reconfigure(SimTime::ZERO, RmId::Tree)
        .expect("swap accepted");
    let r = e.run_fio(&FioSpec::paper(RwMode::Read, Pattern::Rand, 4096, 2_000));
    let fallbacks = e.card_mut().unwrap().dfx_fallbacks();
    let swap_ms = done.as_nanos() as f64 / 1e6;
    Experiment {
        id: "§IV-C DFX".into(),
        caption: "live accelerator swap under I/O (MCAP partial bitstream)".into(),
        cells: vec![
            Cell {
                config: "partial bitstream load".into(),
                workload: "RM Uniform → Tree".into(),
                unit: "ms",
                measured: swap_ms,
                paper: None,
            },
            Cell {
                config: "I/O during swap".into(),
                workload: "ops completed".into(),
                unit: "",
                measured: r.ops as f64,
                paper: None,
            },
            Cell {
                config: "I/O during swap".into(),
                workload: "integrity failures".into(),
                unit: "",
                measured: e.verify_failures() as f64,
                paper: Some(0.0),
            },
            Cell {
                config: "Straw2 fallback placements".into(),
                workload: "during reconfiguration".into(),
                unit: "",
                measured: fallbacks as f64,
                paper: None,
            },
        ],
    }
}

// ---------------------------------------------------------------------
// Ablation: the six optimizations of Fig. 2, one at a time
// ---------------------------------------------------------------------

/// Ablation study: start from DeLiBA-2's host path and enable DeLiBA-K's
/// optimizations cumulatively, in the order the paper's Fig. 2 circles
/// them.  Reported per step: 4 kB random-write throughput and random-read
/// latency.  This is the design-choice breakdown DESIGN.md calls for —
/// the paper presents only the end points.
pub fn ablation() -> Experiment {
    use deliba_core::generation::PathFeatures;
    use deliba_net::TcpStackKind;

    let base = Generation::DeLiBA2.features();
    type Step = (&'static str, fn(&mut PathFeatures));
    let steps: Vec<Step> = vec![
        ("baseline: DeLiBA-2 path", |_f| {}),
        ("① io_uring: batching, zero-copy, async", |f| {
            f.io_uring = true;
            f.sync_daemon = false;
            f.contexts = 3;
            f.crossings = 0;
            f.copies = 1;
        }),
        ("② DMQ scheduler bypass", |f| f.sched_bypass = true),
        ("③ QDMA multi-queue DMA", |f| f.qdma = true),
        ("④ RTL accelerators (vs HLS)", |f| f.rtl_accel = true),
        ("⑤ polled completion", |f| f.polled_completion = true),
        ("⑥ RTL TCP/IP TX+RX", |f| f.hw_tcp = TcpStackKind::RtlFpga),
    ];

    // The feature sets are cumulative, so build the per-step configs
    // serially first; the measurements themselves are independent.
    let mut features = base;
    let mut step_cfgs = Vec::new();
    for (label, apply) in steps {
        apply(&mut features);
        let mut cfg = EngineConfig::new(Generation::DeLiBA2, true, Mode::Replication);
        cfg.features = features;
        step_cfgs.push((label, cfg));
    }
    let cells: Vec<Cell> = crate::runner::par_map(step_cfgs, |(label, cfg)| {
        let tput = {
            let mut e = Engine::new(cfg);
            e.run_fio(&FioSpec::paper(RwMode::Write, Pattern::Rand, 4096, 3_000))
                .throughput_mbps
        };
        let lat = {
            let mut e = Engine::new(cfg);
            e.run_fio(&FioSpec::latency_probe(RwMode::Read, Pattern::Rand, 4096, PROBE_OPS))
                .mean_latency_us
        };
        [
            Cell {
                config: label.into(),
                workload: "rand-write 4k".into(),
                unit: "MB/s",
                measured: tput,
                paper: None,
            },
            Cell {
                config: label.into(),
                workload: "rand-read 4k".into(),
                unit: "µs",
                measured: lat,
                paper: None,
            },
        ]
    })
    .into_iter()
    .flatten()
    .collect();
    Experiment {
        id: "Ablation".into(),
        caption: "cumulative effect of the six Fig. 2 optimizations (D2 path → DeLiBA-K path)".into(),
        cells,
    }
}

/// MTU study (§IV-B: "maximum packet length is configurable … from 1518
/// bytes for standard Ethernet to 9018 bytes for Jumbo frames"): large
/// sequential transfers gain from jumbo framing's wire efficiency.
pub fn mtu() -> Experiment {
    let mut combos = Vec::new();
    for jumbo in [false, true] {
        for (rw, pat, bs) in [
            (RwMode::Write, Pattern::Seq, 131_072u32),
            (RwMode::Read, Pattern::Seq, 131_072),
            (RwMode::Write, Pattern::Rand, 4_096),
        ] {
            combos.push((jumbo, rw, pat, bs));
        }
    }
    let cells = crate::runner::par_map(combos, |(jumbo, rw, pat, bs)| {
        let mut cfg = EngineConfig::new(Generation::DeLiBAK, true, Mode::Replication);
        cfg.jumbo_frames = jumbo;
        let r = run(cfg, FioSpec::paper(rw, pat, bs, 2_500));
        Cell {
            config: if jumbo { "jumbo 9018 B" } else { "standard 1518 B" }.into(),
            workload: r.workload.clone(),
            unit: "MB/s",
            measured: r.throughput_mbps,
            paper: None,
        }
    });
    Experiment {
        id: "§IV-B MTU".into(),
        caption: "standard vs jumbo framing on the DeLiBA-K path".into(),
        cells,
    }
}

// ---------------------------------------------------------------------
// Stage-latency breakdown (Table II methodology, decomposed)
// ---------------------------------------------------------------------

/// Run a qd-1 latency probe with stage tracing and return the traced
/// report (breakdown attached).
pub fn traced_probe(g: Generation, rw: RwMode, pat: Pattern, bs: u32) -> RunReport {
    let cfg = EngineConfig::new(g, true, Mode::Replication).with_tracing();
    let mut e = Engine::new(cfg);
    let spec = FioSpec::latency_probe(rw, pat, bs, PROBE_OPS);
    let r = e.run_fio(&spec);
    assert_eq!(e.verify_failures(), 0, "data corruption in {:?}", spec.label());
    r
}

/// Per-stage latency decomposition of the Table-II 4 kB random-read
/// probe across the three generations — *where* each generation's time
/// goes, not just the total.  Asserts the structural invariants that
/// the paper's Fig. 2 narrative implies: DeLiBA-1 pays all six kernel
/// crossings on the ring-enter stage while DeLiBA-K amortizes them to
/// zero, and the DMQ bypass leaves DeLiBA-K's MQ-scheduler stage at
/// exactly zero.
pub fn breakdown() -> Experiment {
    use deliba_sim::Stage;
    let gens = vec![Generation::DeLiBA1, Generation::DeLiBA2, Generation::DeLiBAK];
    let cells: Vec<Cell> = crate::runner::par_map(gens, |g| {
        let mut cells = Vec::new();
        let r = traced_probe(g, RwMode::Read, Pattern::Rand, 4096);
        let b = r.breakdown.as_ref().expect("traced run has a breakdown");
        // The decomposition must account for the whole mean latency.
        assert!(
            (b.stage_sum_us - r.mean_latency_us).abs() < 1.0,
            "{}: stage sum {:.2} µs vs e2e mean {:.2} µs",
            gen_name(g),
            b.stage_sum_us,
            r.mean_latency_us
        );
        match g {
            Generation::DeLiBA1 => {
                assert!(
                    b.stage(Stage::RingEnter).mean_us >= 8.9,
                    "D1 pays 6 crossings ≈ 9 µs on ring-enter"
                );
            }
            Generation::DeLiBAK => {
                assert_eq!(
                    b.stage(Stage::RingEnter).mean_us,
                    0.0,
                    "DeLiBA-K amortizes ring enters to zero"
                );
                assert_eq!(
                    b.stage(Stage::BlkMq).mean_us,
                    0.0,
                    "DMQ bypass leaves the MQ-scheduler stage empty"
                );
            }
            Generation::DeLiBA2 => {}
        }
        for row in &b.stages {
            cells.push(Cell {
                config: gen_name(g),
                workload: row.stage.clone(),
                unit: "µs",
                measured: row.mean_us,
                paper: None,
            });
        }
        cells.push(Cell {
            config: gen_name(g),
            workload: "total".into(),
            unit: "µs",
            measured: b.stage_sum_us,
            paper: table2_paper(g, Mode::Replication, RwMode::Read, Pattern::Rand),
        });
        cells
    })
    .into_iter()
    .flatten()
    .collect();
    Experiment {
        id: "Table II (stages)".into(),
        caption: "per-stage latency decomposition, rand-read 4 kB, qd 1".into(),
        cells,
    }
}

// ---------------------------------------------------------------------
// Harness perf gate (not a paper artifact)
// ---------------------------------------------------------------------

/// Wall-clock perf gate: a fixed reference workload through the full
/// engine plus a pure event-queue churn loop, reporting wall time and
/// events per second.  This is the reproduction's own benchmark (CI
/// tracks it as `BENCH_harness.json`), not a paper figure — and because
/// wall-clock is nondeterministic it is deliberately *excluded* from
/// `harness all`, whose output must stay bit-reproducible.
pub fn perf() -> Experiment {
    use deliba_sim::{EventQueue, ShardedEventQueue, SimDuration, SimTime};
    use std::time::Instant;

    // Reference workload: the Fig. 7 headline cell (DeLiBA-K hardware
    // path, replication, 4 kB random read) at 5× the usual cell budget.
    // Best of 3 fresh engines: the first run in a process pays one-time
    // page-fault and allocator warmup (roughly 3× the steady-state wall
    // on the CI box) that is not the engine's cost, and the run is
    // deterministic so every repeat produces identical counters.
    let spec = FioSpec::paper(RwMode::Read, Pattern::Rand, 4096, 5 * CELL_OPS);
    let mut engine_wall = f64::INFINITY;
    let mut engine_events = 0u64;
    let mut reference = None;
    for _ in 0..3 {
        let cfg = EngineConfig::new(Generation::DeLiBAK, true, Mode::Replication);
        let mut e = Engine::new(cfg);
        let t0 = Instant::now();
        let r = e.run_fio(&spec);
        let wall = t0.elapsed().as_secs_f64();
        assert_eq!(e.verify_failures(), 0);
        if wall < engine_wall {
            engine_wall = wall;
            engine_events = e.events_executed();
        }
        reference = Some(r);
    }
    let r = reference.expect("best-of-3 ran");
    let engine_evps = engine_events as f64 / engine_wall.max(1e-9);
    let counters = r.counters.expect("engine reports carry counters");
    let fused_share = counters.fused_events as f64 / counters.events.max(1) as f64;
    let events_per_io = counters.events as f64 / r.ops.max(1) as f64;

    // The deep-queue reference cell above reads 0.0 fused share by
    // design: with 32 in-flight ops per job the heap always holds an
    // earlier token, so the completion-pops-next fusion can never apply
    // (see the engine's fused_fast_path_* regression tests).  A
    // queue-depth-1 probe is where the path provably fires — pin its
    // share here so BENCH_harness.json documents both regimes.
    let fused_share_qd1 = {
        use deliba_core::TraceOp;
        let ops: Vec<TraceOp> =
            (0..PROBE_OPS).map(|i| TraceOp::read((i % 1024) * 4096, 4096, true)).collect();
        let mut e = Engine::new(EngineConfig::new(Generation::DeLiBAK, true, Mode::Replication));
        let p = e.run_trace(vec![ops], 1);
        let c = p.counters.expect("engine reports carry counters");
        c.fused_events as f64 / c.events.max(1) as f64
    };

    // Recovery-active engine rate: the same closed loop with an OSD
    // crash mid-run and the background scheduler armed (backfill plus a
    // deep-scrub cadence), so the cell prices the recovery machinery's
    // event overhead next to the fault-free reference above.  Best of 3
    // like the reference; the run itself is deterministic.
    let recovery_evps = {
        use deliba_cluster::RecoveryPolicy;
        use deliba_core::TraceOp;
        use deliba_fault::{FaultSchedule, ResiliencePolicy};
        use deliba_sim::{SimDuration, SimTime};
        let trace: Vec<TraceOp> = (0..2 * CELL_OPS)
            .map(|i| {
                let off = (i % 128) * (4 << 20);
                if i < CELL_OPS {
                    TraceOp::write(off, 4096, true)
                } else {
                    TraceOp::read(off, 4096, true)
                }
            })
            .collect();
        let mut best = 0.0f64;
        for _ in 0..3 {
            let cfg = EngineConfig::new(Generation::DeLiBAK, true, Mode::Replication)
                .with_resilience(ResiliencePolicy::default())
                .with_recovery(
                    RecoveryPolicy::default().with_scrub(SimDuration::from_micros(500), 32),
                );
            let mut e = Engine::new(cfg);
            e.set_fault_schedule(
                FaultSchedule::new().osd_crash(SimTime::from_nanos(2_000_000), 5),
            );
            let t0 = Instant::now();
            let r = e.run_trace(vec![trace.clone()], 8);
            let wall = t0.elapsed().as_secs_f64();
            assert_eq!(r.verify_failures, 0);
            let rec = r.recovery.expect("armed");
            assert!(rec.objects_recovered > 0, "the crash must cost something");
            best = best.max(e.events_executed() as f64 / wall.max(1e-9));
        }
        best
    };

    // Flight-recorder cost.  The disabled path (`TraceDepth::Off`, the
    // default — every emit is one branch on a `None`) runs the *same*
    // configuration as the engine reference cell, so its overhead must
    // be measured as interleaved pairs — reference run, then
    // disabled-path run, back to back — taking the minimum pairwise
    // slowdown.  The previous shape compared two independent best-of-3
    // batches: cross-batch drift (allocator state, frequency scaling, a
    // scheduler hiccup in either batch) read as a fake 3–4 % "overhead"
    // on a code path that is one never-taken branch.  Pairing puts both
    // legs under the same drift and the min cancels what remains; CI
    // holds the result under 1 %.  Recording overhead pairs full-depth
    // against the disabled leg the same way.
    use deliba_sim::TraceDepth;
    let run_evps = |depth: TraceDepth| -> f64 {
        let cfg = EngineConfig::new(Generation::DeLiBAK, true, Mode::Replication)
            .with_trace_depth(depth);
        let mut e = Engine::new(cfg);
        let t0 = Instant::now();
        let r = e.run_fio(&spec);
        let wall = t0.elapsed().as_secs_f64();
        assert_eq!(r.verify_failures, 0);
        e.events_executed() as f64 / wall.max(1e-9)
    };
    let mut untraced_evps = 0.0f64;
    let mut traced_evps = 0.0f64;
    let mut disabled_overhead = f64::INFINITY;
    let mut recording_overhead = f64::INFINITY;
    for _ in 0..3 {
        let reference = run_evps(TraceDepth::Off);
        let off = run_evps(TraceDepth::Off);
        let full = run_evps(TraceDepth::Full);
        untraced_evps = untraced_evps.max(off);
        traced_evps = traced_evps.max(full);
        disabled_overhead = disabled_overhead.min(1.0 - off / reference.max(1e-9));
        recording_overhead = recording_overhead.min(1.0 - full / off.max(1e-9));
    }
    let disabled_overhead = disabled_overhead.max(0.0);
    let recording_overhead = recording_overhead.max(0.0);

    // Telemetry-plane cost, measured exactly like the flight recorder:
    // interleaved pairs — reference, disabled leg, recording leg — with
    // the minimum pairwise slowdown, so cross-batch drift cancels.  The
    // disabled path is one branch per emit site (a `None` check on the
    // handle); CI holds it under 1 %.
    let run_tele_evps = |on: bool| -> f64 {
        let mut cfg = EngineConfig::new(Generation::DeLiBAK, true, Mode::Replication);
        if on {
            cfg = cfg.with_telemetry(deliba_sim::TelemetryConfig::default());
        }
        let mut e = Engine::new(cfg);
        let t0 = Instant::now();
        let r = e.run_fio(&spec);
        let wall = t0.elapsed().as_secs_f64();
        assert_eq!(r.verify_failures, 0);
        e.events_executed() as f64 / wall.max(1e-9)
    };
    let mut tele_off_evps = 0.0f64;
    let mut tele_on_evps = 0.0f64;
    let mut tele_disabled_overhead = f64::INFINITY;
    let mut tele_recording_overhead = f64::INFINITY;
    for _ in 0..3 {
        let reference = run_tele_evps(false);
        let off = run_tele_evps(false);
        let on = run_tele_evps(true);
        tele_off_evps = tele_off_evps.max(off);
        tele_on_evps = tele_on_evps.max(on);
        tele_disabled_overhead = tele_disabled_overhead.min(1.0 - off / reference.max(1e-9));
        tele_recording_overhead = tele_recording_overhead.min(1.0 - on / off.max(1e-9));
    }
    let tele_disabled_overhead = tele_disabled_overhead.max(0.0);
    let tele_recording_overhead = tele_recording_overhead.max(0.0);

    // Pure queue churn: steady-state schedule/pop with pseudo-random
    // deltas — the simulator hot loop with the engine stripped away.
    const CHURN: u64 = 1_000_000;
    let mut q: EventQueue<u64> = EventQueue::with_capacity(1024);
    for i in 0..1024u64 {
        q.schedule_at(SimTime::from_nanos(i), i);
    }
    let mut x = 0x9E37_79B9_7F4A_7C15u64;
    let t0 = Instant::now();
    for _ in 0..CHURN {
        let (at, v) = q.pop().expect("queue stays populated");
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        q.schedule_at(at + SimDuration::from_nanos(1 + ((x >> 33) & 1023)), v);
    }
    let queue_wall = t0.elapsed().as_secs_f64();
    let queue_evps = CHURN as f64 / queue_wall.max(1e-9);

    // Lane churn: the regime the engine's per-lane sub-queues live in.
    // Each of 32 lanes carries a deep stream of completions with a
    // stable per-lane service delta, so successive pushes into one lane
    // ascend in time — the sharded queue appends them in O(1) behind a
    // 32-entry frontier, where the single heap sifts every event through
    // a 4096-deep heap.  Both structures run the identical event stream;
    // the speedup cell is their ratio.
    const LANES: usize = 32;
    const LANE_DEPTH: u64 = 128;
    let lane_delta = |lane: usize| SimDuration::from_nanos(1 + ((lane as u64 * 137) & 1023));
    let lane_churn_single = || -> f64 {
        let mut q: EventQueue<u64> = EventQueue::with_capacity(LANES * LANE_DEPTH as usize);
        for i in 0..LANES as u64 * LANE_DEPTH {
            q.schedule_at(SimTime::from_nanos(i), i);
        }
        let t0 = Instant::now();
        for _ in 0..CHURN {
            let (at, v) = q.pop().expect("queue stays populated");
            q.schedule_at(at + lane_delta(v as usize % LANES), v);
        }
        CHURN as f64 / t0.elapsed().as_secs_f64().max(1e-9)
    };
    let lane_churn_sharded = || -> f64 {
        let mut q: ShardedEventQueue<u64> = ShardedEventQueue::new(LANES);
        for i in 0..LANES as u64 * LANE_DEPTH {
            q.schedule_at(i as usize % LANES, SimTime::from_nanos(i), i);
        }
        let t0 = Instant::now();
        for _ in 0..CHURN {
            let (at, v) = q.pop().expect("queue stays populated");
            let lane = v as usize % LANES;
            q.schedule_at(lane, at + lane_delta(lane), v);
        }
        CHURN as f64 / t0.elapsed().as_secs_f64().max(1e-9)
    };
    // Best of 3 each — a scheduler hiccup in either leg would fake a
    // ratio shift in both directions.
    let lane_single_evps = (0..3).map(|_| lane_churn_single()).fold(0.0, f64::max);
    let sharded_evps = (0..3).map(|_| lane_churn_sharded()).fold(0.0, f64::max);
    let sharded_speedup = sharded_evps / lane_single_evps.max(1e-9);

    // Intra-run parallelism, engine shape: an EC-write cell, whose
    // serial wall-clock is dominated by lane-local compute (payload
    // fill, FNV checksum, RS(4, 2) arithmetic), run once serially and
    // once with the prepare worker pool sized to the machine.  Both
    // runs produce byte-identical reports (pinned by the differential
    // suite); the cells expose the wall-clock ratio.  On a single-core
    // runner the pool is size 1 and the ratio reads ~1.0 — CI floors
    // apply only when the machine actually has cores to win on.
    let pool_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let ec_spec = FioSpec::paper(RwMode::Write, Pattern::Rand, 16384, CELL_OPS);
    let ec_wall = |threads: usize| -> f64 {
        let cfg = EngineConfig::new(Generation::DeLiBAK, true, Mode::ErasureCoding)
            .with_sim_threads(threads);
        let mut e = Engine::new(cfg);
        let t0 = Instant::now();
        let r = e.run_fio(&ec_spec);
        assert_eq!(r.verify_failures, 0);
        t0.elapsed().as_secs_f64()
    };
    // Interleaved best-of-3 per leg, for the same reason the recorder
    // cells pair their runs: cross-batch drift must hit both legs.
    let mut ec_serial_wall = f64::INFINITY;
    let mut ec_pool_wall = f64::INFINITY;
    for _ in 0..3 {
        ec_serial_wall = ec_serial_wall.min(ec_wall(1));
        ec_pool_wall = ec_pool_wall.min(ec_wall(pool_threads));
    }
    let prepare_speedup = ec_serial_wall / ec_pool_wall.max(1e-9);

    // Intra-run parallelism, fleet shape: a 32-lane big-cluster gauge
    // driven through the sim-level window executor, with synthetic
    // lane-local work standing in for per-OSD compute.  Every thread
    // count merges to identical state (pinned by the sim differential
    // tests); the cells expose the event rate and its scaling.
    const GAUGE_LANES: usize = 32;
    const GAUGE_HOPS: u64 = 256;
    struct GaugeLane {
        acc: u64,
    }
    impl deliba_sim::LaneState for GaugeLane {}
    struct GaugeModel {
        step: SimDuration,
    }
    impl deliba_sim::SharedState for GaugeModel {}
    let gauge_evps = |threads: usize| -> f64 {
        let model = GaugeModel { step: SimDuration::from_nanos(1_000) };
        let mut q: ShardedEventQueue<u64> = ShardedEventQueue::new(GAUGE_LANES);
        q.set_lookahead(SimDuration::from_nanos(1_000));
        for lane in 0..GAUGE_LANES {
            q.schedule_at(lane, SimTime::from_nanos(lane as u64), 0u64);
        }
        let mut lanes: Vec<GaugeLane> =
            (0..GAUGE_LANES).map(|l| GaugeLane { acc: l as u64 }).collect();
        let handler = |m: &GaugeModel,
                       shard: usize,
                       lane: &mut GaugeLane,
                       at: SimTime,
                       hop: u64,
                       fx: &mut deliba_sim::Effects<u64, ()>| {
            // A few µs of lane-local arithmetic per event — the scale
            // of one op's payload + checksum work.
            let mut x = lane.acc ^ hop;
            for _ in 0..4096 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            }
            lane.acc = x;
            if hop + 1 < GAUGE_HOPS {
                fx.schedule(shard, at + m.step, hop + 1);
            }
        };
        let mut ex = deliba_sim::WindowExecutor::new(threads);
        let mut done = 0usize;
        let t0 = Instant::now();
        loop {
            match ex.run_window(&mut q, &mut lanes, &model, &handler, &mut |_, _: ()| {}, None) {
                deliba_sim::WindowOutcome::Empty => break,
                deliba_sim::WindowOutcome::Clipped(_) => unreachable!("no clip configured"),
                deliba_sim::WindowOutcome::Executed(n) => done += n,
            }
        }
        done as f64 / t0.elapsed().as_secs_f64().max(1e-9)
    };
    let mut gauge_serial_evps = 0.0f64;
    let mut gauge_pool_evps = 0.0f64;
    for _ in 0..3 {
        gauge_serial_evps = gauge_serial_evps.max(gauge_evps(1));
        gauge_pool_evps = gauge_pool_evps.max(gauge_evps(pool_threads));
    }
    let gauge_speedup = gauge_pool_evps / gauge_serial_evps.max(1e-9);

    Experiment {
        id: "perf".into(),
        caption: "harness perf gate: wall-clock + events/sec on the reference workload".into(),
        cells: vec![
            // Cell configs name their thread/shard configuration: the
            // reference cells run the serial commit loop (1 thread,
            // sharded queue), the parallel cells below name the pool.
            Cell {
                config: "engine closed loop (1 thread)".into(),
                workload: r.workload.clone(),
                unit: "s",
                measured: engine_wall,
                paper: None,
            },
            Cell {
                config: "engine closed loop (1 thread)".into(),
                workload: "events per second".into(),
                unit: "ev/s",
                measured: engine_evps,
                paper: None,
            },
            Cell {
                config: "engine closed loop (1 thread)".into(),
                workload: "events per io".into(),
                unit: "ev/io",
                measured: events_per_io,
                paper: None,
            },
            // Relabelled from the ambiguous "fused event share": this is
            // the deep-queue reference cell whose share is 0.0 *by
            // design* (see the comment above fused_share_qd1) — the
            // label now says which regime it measures.
            Cell {
                config: "fused fast path".into(),
                workload: "fused event share (deep qd)".into(),
                unit: "frac",
                measured: fused_share,
                paper: None,
            },
            Cell {
                config: "fused fast path".into(),
                workload: "fused event share (qd 1)".into(),
                unit: "frac",
                measured: fused_share_qd1,
                paper: None,
            },
            Cell {
                config: "engine recovery active (1 thread)".into(),
                workload: "events per second".into(),
                unit: "ev/s",
                measured: recovery_evps,
                paper: None,
            },
            Cell {
                config: "placement cache".into(),
                workload: "hit rate".into(),
                unit: "frac",
                measured: counters.cache_hit_rate(),
                paper: None,
            },
            Cell {
                config: "placement cache".into(),
                workload: "hits".into(),
                unit: "ops",
                measured: counters.cache_hits as f64,
                paper: None,
            },
            Cell {
                config: "placement cache".into(),
                workload: "misses".into(),
                unit: "ops",
                measured: counters.cache_misses as f64,
                paper: None,
            },
            Cell {
                config: "placement cache".into(),
                workload: "epoch invalidations".into(),
                unit: "ops",
                measured: counters.cache_invalidations as f64,
                paper: None,
            },
            Cell {
                config: "event queue".into(),
                workload: "schedule/pop churn".into(),
                unit: "ev/s",
                measured: queue_evps,
                paper: None,
            },
            Cell {
                config: "sharded queue".into(),
                workload: "lane churn (single heap)".into(),
                unit: "ev/s",
                measured: lane_single_evps,
                paper: None,
            },
            Cell {
                config: "sharded queue".into(),
                workload: "lane churn (sharded)".into(),
                unit: "ev/s",
                measured: sharded_evps,
                paper: None,
            },
            Cell {
                config: "sharded queue".into(),
                workload: "sharded queue speedup".into(),
                unit: "x",
                measured: sharded_speedup,
                paper: None,
            },
            Cell {
                config: "flight recorder".into(),
                workload: "untraced events per second".into(),
                unit: "ev/s",
                measured: untraced_evps,
                paper: None,
            },
            Cell {
                config: "flight recorder".into(),
                workload: "traced events per second".into(),
                unit: "ev/s",
                measured: traced_evps,
                paper: None,
            },
            Cell {
                config: "flight recorder".into(),
                workload: "disabled-path overhead".into(),
                unit: "frac",
                measured: disabled_overhead,
                paper: None,
            },
            Cell {
                config: "flight recorder".into(),
                workload: "recording overhead".into(),
                unit: "frac",
                measured: recording_overhead,
                paper: None,
            },
            Cell {
                config: "telemetry plane".into(),
                workload: "disabled events per second".into(),
                unit: "ev/s",
                measured: tele_off_evps,
                paper: None,
            },
            Cell {
                config: "telemetry plane".into(),
                workload: "recording events per second".into(),
                unit: "ev/s",
                measured: tele_on_evps,
                paper: None,
            },
            Cell {
                config: "telemetry plane".into(),
                workload: "disabled-path overhead".into(),
                unit: "frac",
                measured: tele_disabled_overhead,
                paper: None,
            },
            Cell {
                config: "telemetry plane".into(),
                workload: "recording overhead".into(),
                unit: "frac",
                measured: tele_recording_overhead,
                paper: None,
            },
            // Intra-run parallelism.  "pool" cells run with the machine
            // width recorded in the "prepare pool threads" cell, so a
            // reader of BENCH_harness.json knows which configuration
            // produced the ratio (1.0 is expected on a 1-core box).
            Cell {
                config: "engine EC write (1 thread)".into(),
                workload: "wall clock".into(),
                unit: "s",
                measured: ec_serial_wall,
                paper: None,
            },
            Cell {
                config: "engine EC write (prepare pool)".into(),
                workload: "wall clock".into(),
                unit: "s",
                measured: ec_pool_wall,
                paper: None,
            },
            Cell {
                config: "engine EC write (prepare pool)".into(),
                workload: "prepare pool threads".into(),
                unit: "threads",
                measured: pool_threads as f64,
                paper: None,
            },
            Cell {
                config: "engine EC write (prepare pool)".into(),
                workload: "prepare speedup".into(),
                unit: "x",
                measured: prepare_speedup,
                paper: None,
            },
            Cell {
                config: "window executor (32 lanes, 1 thread)".into(),
                workload: "events per second".into(),
                unit: "ev/s",
                measured: gauge_serial_evps,
                paper: None,
            },
            Cell {
                config: "window executor (32 lanes, pool)".into(),
                workload: "events per second".into(),
                unit: "ev/s",
                measured: gauge_pool_evps,
                paper: None,
            },
            Cell {
                config: "window executor (32 lanes, pool)".into(),
                workload: "parallel speedup".into(),
                unit: "x",
                measured: gauge_speedup,
                paper: None,
            },
        ],
    }
}

// ---------------------------------------------------------------------
// Chaos soak (fault plane + resilience policy)
// ---------------------------------------------------------------------

/// The chaos soak: a pinned-seed fault schedule thrown at a
/// write-then-read-back trace, once per redundancy mode.  Every scheduled
/// fault class fires mid-trace — an OSD crash, an OSD flap, a lossy/
/// corrupting link window, a DMA error window, a full card outage with
/// FPGA→software failover, and a DFX swap — while the engine's retry/
/// deadline/backoff policy keeps the data flowing.  The acceptance bar is
/// `verify failures == 0` with nonzero retries, timeouts and failovers.
///
/// Deliberately *excluded* from `harness all` (like `perf`): its cells
/// describe the fault plane, not a paper figure, and `harness all` output
/// must stay byte-identical to the fault-free baseline.
pub fn chaos() -> Experiment {
    use deliba_core::TraceOp;
    use deliba_fault::{FaultSchedule, ResiliencePolicy};
    use deliba_net::LinkFaultProfile;
    use deliba_qdma::DmaFaultProfile;
    use deliba_sim::{SimDuration, SimTime};

    const JOBS: u64 = 2;
    const OPS_PER_JOB: u64 = CELL_OPS / JOBS; // writes + read-backs per job
    let ms = |n: u64| SimTime::from_nanos(n * 1_000_000);

    // Each job writes its own extent range, then reads every block back —
    // the read-back half is what turns silent corruption into a verify
    // failure.
    let trace = |job: u64| -> Vec<TraceOp> {
        let half = OPS_PER_JOB / 2;
        let base = job * half * 4096;
        let mut ops = Vec::with_capacity(OPS_PER_JOB as usize);
        for i in 0..half {
            ops.push(TraceOp::write(base + i * 4096, 4096, true));
        }
        for i in 0..half {
            ops.push(TraceOp::read(base + i * 4096, 4096, true));
        }
        ops
    };

    // One instance of every fault class, spread across the soak window.
    let schedule = || {
        FaultSchedule::new()
            .osd_crash(ms(3), 7)
            .osd_flap(ms(10), 19, SimDuration::from_millis(6))
            .link_degrade(ms(6), LinkFaultProfile { drop_p: 0.2, corrupt_p: 0.05 })
            .link_restore(ms(12))
            .dfx_swap(ms(14), RmId::Tree)
            .dma_degrade(
                ms(16),
                DmaFaultProfile { h2c_error_p: 0.1, c2h_error_p: 0.1, exhaust_p: 0.2 },
            )
            .dma_restore(ms(22))
            .card_outage(ms(26), SimDuration::from_millis(6))
    };

    let mut cells = Vec::new();
    for mode in [Mode::Replication, Mode::ErasureCoding] {
        let cfg = EngineConfig::new(Generation::DeLiBAK, true, mode)
            .with_resilience(ResiliencePolicy::default());
        let mut e = Engine::new(cfg);
        e.set_fault_schedule(schedule());
        let r = e.run_trace((0..JOBS).map(trace).collect(), 4);
        let res = r.resilience.expect("chaos runs report resilience counters");
        let config = format!("DeLiBA-K chaos {}", mode.label());
        let mut cell = |workload: &str, unit: &'static str, measured: f64, paper: Option<f64>| {
            cells.push(Cell {
                config: config.clone(),
                workload: workload.into(),
                unit,
                measured,
                paper,
            });
        };
        cell("ops completed", "ops", r.ops as f64, None);
        cell("verify failures", "ops", r.verify_failures as f64, Some(0.0));
        cell("retries", "ops", res.retries as f64, None);
        cell("timeouts", "ops", res.timeouts as f64, None);
        cell("failovers", "ops", res.failovers as f64, None);
        cell("retry budget exhausted", "ops", res.exhausted as f64, None);
        cell("degraded reads", "ops", res.degraded_reads as f64, None);
        cell("fpga failovers", "ops", res.fpga_failovers as f64, None);
        cell("sw-path ops (card down)", "ops", res.degraded_path_ops as f64, None);
        cell("osd crashes", "ops", res.osd_crashes as f64, None);
        cell("dfx swaps", "ops", res.dfx_swaps as f64, None);
        cell("dropped frames", "ops", res.dropped_frames as f64, None);
        cell("corrupt frames", "ops", res.corrupt_frames as f64, None);
        cell("dma errors", "ops", res.dma_errors as f64, None);
        cell("availability", "%", 100.0 * res.availability(r.ops), None);
        cell("time to recover", "µs", res.recovery_time_us, None);
    }

    Experiment {
        id: "chaos".into(),
        caption: "chaos soak: pinned-seed fault schedule vs retry/failover policy".into(),
        cells,
    }
}

// ---------------------------------------------------------------------
// Open-loop latency-under-load curves (`harness loadcurve`)
// ---------------------------------------------------------------------

/// Knobs for the open-loop load sweep — `harness loadcurve` maps its
/// `--rate/--arrival/--zipf-s/--admission-cap` flags onto these.
#[derive(Debug, Clone)]
pub struct LoadCurveOpts {
    /// Offered rates to sweep, KIOPS, low → high.
    pub rates_kiops: Vec<f64>,
    /// Arrival process shaping the intended-arrival clock.
    pub arrival: deliba_workload::ArrivalKind,
    /// Zipf skew of block selection (0 = uniform).
    pub zipf_s: f64,
    /// Admission-queue cap: in-flight bound; arrivals beyond it are
    /// dropped (and counted), never silently deferred.
    pub admission_cap: u32,
    /// Intended arrivals per sweep point.
    pub ops_per_point: u64,
}

impl Default for LoadCurveOpts {
    /// Sweep from well below any generation's capacity to well past
    /// DeLiBA-K's, so every curve shows both the flat region and the
    /// saturation knee.
    fn default() -> Self {
        LoadCurveOpts {
            rates_kiops: vec![2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 96.0, 128.0],
            arrival: deliba_workload::ArrivalKind::Poisson,
            zipf_s: 0.9,
            admission_cap: 256,
            ops_per_point: CELL_OPS / 2,
        }
    }
}

/// The open-loop latency-under-load sweep: one [`RunReport`] per
/// generation (D1, D2, DK), each carrying the whole curve in its
/// `load_curve` section, plus the text-table [`Experiment`].
///
/// Every generation replays the *identical* arrival streams (the
/// generator seed is fixed and rate-independent of the op sequence), so
/// the curves differ only in what the datapath does with the traffic.
/// The carrier report's scalar latency/throughput fields describe the
/// final (highest-rate) point; the curve is the `load_curve` section.
pub fn loadcurve_with(opts: &LoadCurveOpts) -> (Experiment, Vec<RunReport>) {
    use deliba_core::{LoadCurve, OpenLoopRun};
    use deliba_workload::OpenLoopSpec;

    assert!(!opts.rates_kiops.is_empty(), "loadcurve needs at least one rate");
    const GENS: [Generation; 3] =
        [Generation::DeLiBA1, Generation::DeLiBA2, Generation::DeLiBAK];
    let combos: Vec<(Generation, f64)> = GENS
        .iter()
        .flat_map(|&g| opts.rates_kiops.iter().map(move |&r| (g, r)))
        .collect();
    let (arrival, zipf_s, cap, ops) =
        (opts.arrival, opts.zipf_s, opts.admission_cap, opts.ops_per_point);
    let runs: Vec<OpenLoopRun> = crate::runner::par_map(combos, move |(g, rate)| {
        let stream = OpenLoopSpec {
            rate_kiops: rate,
            ops,
            zipf_s,
            arrival,
            ..Default::default()
        }
        .generate();
        Engine::new(EngineConfig::new(g, true, Mode::Replication)).run_open_loop(&stream, cap)
    });

    let mut cells = Vec::new();
    let mut reports = Vec::new();
    for (g, gen_runs) in GENS.iter().zip(runs.chunks(opts.rates_kiops.len())) {
        let points: Vec<_> = gen_runs.iter().map(|r| r.point).collect();
        for p in &points {
            let at = format!("@ {:.0} KIOPS offered", p.offered_kiops);
            let mut cell = |metric: &str, unit: &'static str, measured: f64| {
                cells.push(Cell {
                    config: gen_name(*g),
                    workload: format!("{metric} {at}"),
                    unit,
                    measured,
                    paper: None,
                });
            };
            cell("achieved", "KIOPS", p.achieved_kiops);
            cell("p50", "µs", p.p50_us);
            cell("p99", "µs", p.p99_us);
            cell("p99.9", "µs", p.p999_us);
            cell("dropped", "ops", p.dropped as f64);
        }
        let mut report = gen_runs.last().expect("≥ 1 rate").report.clone();
        report.load_curve = Some(LoadCurve {
            arrival: arrival.label().into(),
            zipf_s,
            admission_cap: cap as u64,
            points,
        });
        reports.push(report);
    }
    let exp = Experiment {
        id: "loadcurve".into(),
        caption: format!(
            "open-loop latency under load ({} arrivals, zipf {:.2}, cap {})",
            arrival.label(),
            zipf_s,
            cap
        ),
        cells,
    };
    (exp, reports)
}

/// [`loadcurve_with`] at the default sweep.
pub fn loadcurve() -> (Experiment, Vec<RunReport>) {
    loadcurve_with(&LoadCurveOpts::default())
}

// ---------------------------------------------------------------------
// Cluster dynamics: recovery storm vs client SLO (`harness recovery`)
// ---------------------------------------------------------------------

/// Degraded-mode SLO study: an OSD dies under open-loop client load and
/// the armed scheduler backfills every lost copy as *costed* background
/// traffic through the same OSD service queues and links the clients
/// use.  The sweep walks the aggressiveness knob (the
/// `osd_recovery_max_active` analogue) from fully throttled to a
/// recovery storm, plus a fault-free baseline replaying the identical
/// arrival stream: foreground tail latency grows with aggressiveness
/// while time-to-clean shrinks — the operator trade-off, measured.  The
/// sweep is deterministic (pinned seeds end to end), so the trade-off's
/// direction is asserted here like a test.
///
/// Excluded from `harness all` (like `chaos`): its cells describe the
/// background-traffic plane, not a paper figure, and `harness all`
/// output must stay byte-identical to the recovery-free baseline.
pub fn recovery() -> Experiment {
    use deliba_cluster::RecoveryPolicy;
    use deliba_fault::{FaultSchedule, ResiliencePolicy};
    use deliba_sim::SimTime;
    use deliba_workload::{ArrivalKind, OpenLoopSpec};

    const RATE_KIOPS: f64 = 24.0;
    const OPS: u64 = CELL_OPS; // ≈ 167 ms of offered load at 24 KIOPS
    const CAP: u32 = 256;
    const CRASH_MS: u64 = 20;
    const VICTIM: i32 = 9;

    // One shared arrival stream, replayed by every sweep point: half
    // writes lay objects down (and become the copies the crash costs),
    // half reads probe degraded-mode latency.
    let stream = OpenLoopSpec {
        rate_kiops: RATE_KIOPS,
        ops: OPS,
        write_frac: 0.5,
        arrival: ArrivalKind::Poisson,
        zipf_s: 0.9,
        ..Default::default()
    }
    .generate();

    // `None` = fault-free baseline; `Some(n)` crashes the victim OSD
    // mid-stream and backfills with `max_active` = n.
    let sweep: Vec<Option<u32>> = vec![None, Some(1), Some(4), Some(16)];
    let runs = crate::runner::par_map(sweep.clone(), |max_active| {
        let mut cfg = EngineConfig::new(Generation::DeLiBAK, true, Mode::Replication)
            .with_resilience(ResiliencePolicy::default());
        if let Some(n) = max_active {
            cfg = cfg.with_recovery(RecoveryPolicy::with_max_active(n));
        }
        let mut e = Engine::new(cfg);
        if max_active.is_some() {
            e.set_fault_schedule(
                FaultSchedule::new()
                    .osd_crash(SimTime::from_nanos(CRASH_MS * 1_000_000), VICTIM),
            );
        }
        let run = e.run_open_loop(&stream, CAP);
        assert_eq!(
            run.report.verify_failures, 0,
            "data corruption at max_active {max_active:?}"
        );
        run
    });

    let mut cells = Vec::new();
    for (ma, run) in sweep.iter().zip(&runs) {
        let config = match ma {
            None => "healthy baseline".to_string(),
            Some(n) => format!("crash + max_active {n}"),
        };
        let p = run.point;
        let mut cell = |workload: &str, unit: &'static str, measured: f64, paper: Option<f64>| {
            cells.push(Cell {
                config: config.clone(),
                workload: workload.into(),
                unit,
                measured,
                paper,
            });
        };
        cell("achieved", "KIOPS", p.achieved_kiops, None);
        cell("foreground p50", "µs", p.p50_us, None);
        cell("foreground p99", "µs", p.p99_us, None);
        cell("foreground p99.9", "µs", p.p999_us, None);
        cell("dropped", "ops", p.dropped as f64, None);
        if let Some(rec) = run.report.recovery {
            cell("objects recovered", "ops", rec.objects_recovered as f64, None);
            cell("recovery ops", "ops", rec.recovery_ops as f64, None);
            cell("background bytes", "MB", rec.background_bytes as f64 / 1e6, None);
            cell("degraded reads", "ops", rec.degraded_reads as f64, None);
            cell("unrecoverable objects", "ops", rec.unrecoverable as f64, Some(0.0));
            cell("time to clean", "ms", rec.time_to_clean_us / 1e3, None);
        }
    }

    // Pin the trade-off (the sweep is deterministic, so these hold or
    // the model regressed): tail interference shrinks monotonically as
    // the scheduler throttles, while time-to-clean stretches; a crash
    // with two surviving copies never strands an object.
    let p99 = |i: usize| runs[i].point.p99_us;
    assert!(
        p99(0) <= p99(1) && p99(1) <= p99(2) && p99(2) <= p99(3),
        "foreground p99 must grow with recovery aggressiveness: \
         baseline {:.1} / throttled {:.1} / default {:.1} / storm {:.1} µs",
        p99(0),
        p99(1),
        p99(2),
        p99(3)
    );
    let ttc = |i: usize| runs[i].report.recovery.expect("armed").time_to_clean_us;
    assert!(
        ttc(3) <= ttc(2) && ttc(2) <= ttc(1),
        "time-to-clean must shrink with recovery aggressiveness: \
         throttled {:.0} / default {:.0} / storm {:.0} µs",
        ttc(1),
        ttc(2),
        ttc(3)
    );
    for run in runs.iter().skip(1) {
        let rec = run.report.recovery.expect("armed");
        assert!(rec.objects_recovered > 0, "the crash must cost something: {rec:?}");
        assert_eq!(rec.unrecoverable, 0, "two copies survive every crash: {rec:?}");
        assert!(rec.time_to_clean_us > 0.0, "every episode closes: {rec:?}");
    }

    Experiment {
        id: "recovery".into(),
        caption: format!(
            "degraded-mode SLO: OSD crash at {CRASH_MS} ms under {RATE_KIOPS:.0} KIOPS \
             open-loop load, recovery aggressiveness sweep"
        ),
        cells,
    }
}

// ---------------------------------------------------------------------
// Telemetry timeline: burn-rate alerting under a mid-run crash
// (`harness timeline`)
// ---------------------------------------------------------------------

/// Knobs of the timeline experiment the harness maps `--window-us` /
/// `--slo-p99-us` onto.
#[derive(Debug, Clone, Copy)]
pub struct TimelineOpts {
    /// Telemetry window width, µs of virtual time.
    pub window_us: u64,
    /// SLO latency target, µs.
    pub slo_p99_us: u64,
}

impl Default for TimelineOpts {
    fn default() -> Self {
        TimelineOpts { window_us: 500, slo_p99_us: 400 }
    }
}

/// Exported artifacts of one timeline run: the carrier report plus all
/// four telemetry-plane exports, ready to write to disk.
#[derive(Debug, Clone)]
pub struct TimelineArtifacts {
    /// The run's report (carries the `slo` section).
    pub report: RunReport,
    /// Machine-checked timeline document (CI re-derives the alert
    /// invariants from this).
    pub timeline_json: String,
    /// One row per window.
    pub csv: String,
    /// Timestamped Prometheus series.
    pub prom: String,
    /// Chrome-trace counter tracks.
    pub chrome: String,
}

/// The telemetry-plane showcase: an open-loop ramp that ends past
/// DeLiBA-K's ≈60 KIOPS saturation knee, with an OSD crash and a
/// recovery storm in the low-rate phase.  The windowed series shows the
/// whole trajectory — degrade, storm, clean, ramp, saturation — and the
/// SLO monitor must fire a burn-rate alert within a bounded number of
/// windows of the crash annotation and clear it once the cluster is
/// clean again.  Deterministic end to end (pinned seeds, virtual-time
/// alerting), so the correlation is asserted here like a test.
///
/// Excluded from `harness all` (like `chaos` and `recovery`): its cells
/// describe the observability plane, not a paper figure.
pub fn timeline_with(opts: &TimelineOpts) -> (Experiment, TimelineArtifacts) {
    use deliba_cluster::RecoveryPolicy;
    use deliba_core::ArrivalOp;
    use deliba_fault::{FaultSchedule, ResiliencePolicy};
    use deliba_sim::{InstantKind, SimDuration, SimTime, TelemetryConfig};
    use deliba_workload::{ArrivalKind, OpenLoopSpec};

    const CAP: u32 = 256;
    const CRASH_MS: u64 = 20;
    const VICTIM: i32 = 9;
    // The alert must fire within this much virtual time of the crash.
    // The client-visible degrade lags the crash itself: in-flight ops to
    // the dead OSD ride out their deadline first, and the storm's
    // latency cost lands at op *completion* times — measured ≈ 10 ms.
    // A time bound (not a window count) keeps the assert meaningful at
    // any `--window-us`.
    const ALERT_WITHIN_US: u64 = 12_000;
    // Hold 24 KIOPS while the crash, storm and clean-up play out, then
    // step across the knee: 48 KIOPS is still under it, 72 is past it.
    const RAMP: [(f64, u64); 3] = [(24.0, 2_400), (48.0, 1_200), (72.0, 1_800)];

    // One concatenated arrival stream: each segment is its own pinned
    // generator, shifted to start where the previous one ended.
    let mut stream: Vec<ArrivalOp> = Vec::new();
    let mut base_ns = 0u64;
    for (i, &(rate, ops)) in RAMP.iter().enumerate() {
        let seg = OpenLoopSpec {
            rate_kiops: rate,
            ops,
            write_frac: 0.5,
            arrival: ArrivalKind::Poisson,
            zipf_s: 0.9,
            seed: 0xD1BA + i as u64,
            ..Default::default()
        }
        .generate();
        let last = seg.last().map(|a| a.at.as_nanos()).unwrap_or(0);
        stream.extend(seg.into_iter().map(|a| ArrivalOp {
            at: SimTime::from_nanos(base_ns + a.at.as_nanos()),
            op: a.op,
        }));
        base_ns += last + 1_000;
    }

    let tcfg = TelemetryConfig::default()
        .with_window(SimDuration::from_micros(opts.window_us))
        .with_slo_p99(SimDuration::from_micros(opts.slo_p99_us));
    let cfg = EngineConfig::new(Generation::DeLiBAK, true, Mode::Replication)
        .with_resilience(ResiliencePolicy::default())
        .with_recovery(RecoveryPolicy::with_max_active(16))
        .with_telemetry(tcfg);
    let mut e = Engine::new(cfg);
    e.set_fault_schedule(
        FaultSchedule::new().osd_crash(SimTime::from_nanos(CRASH_MS * 1_000_000), VICTIM),
    );
    let run = e.run_open_loop(&stream, CAP);
    assert_eq!(run.report.verify_failures, 0, "data corruption under the timeline schedule");

    // The in-run invariants CI re-derives from the exported JSON.
    let slo = run.report.slo.clone().expect("telemetry was armed");
    let width_ns = e.telemetry().with(|r| r.width_ns()).expect("recording");
    let anns = e.telemetry().with(|r| r.annotations()).expect("recording");
    let crash = anns
        .iter()
        .find(|a| a.kind == InstantKind::OsdCrash)
        .expect("the crash lands as a window annotation");
    let crash_window = crash.at.as_nanos() / width_ns;
    assert!(!slo.alerts.is_empty(), "the recovery storm must fire a burn-rate alert");
    let first = &slo.alerts[0];
    let alert_within_windows = (ALERT_WITHIN_US * 1_000).div_ceil(width_ns);
    assert!(
        first.fired_window >= crash_window
            && first.fired_window <= crash_window + alert_within_windows,
        "alert must fire within {ALERT_WITHIN_US} µs ({alert_within_windows} windows) \
         of the crash: crash in window {crash_window}, fired in {}",
        first.fired_window
    );
    let rec = run.report.recovery.expect("armed");
    assert!(rec.time_to_clean_us > 0.0, "the degraded episode must close: {rec:?}");
    let cleared_us = first
        .cleared_us
        .expect("the alert must clear once the storm subsides");
    let crash_us = crash.at.as_nanos() as f64 / 1e3;
    let window_us_f = width_ns as f64 / 1e3;
    // The episode is real (≥ one window long) and bounded by the
    // recovery: burn recovers no later than the cluster's clean instant
    // plus the short rolling window's lag.  (Clearing *before* the
    // official clean is legitimate — the monitor tracks client burn,
    // and the storm's latency pressure subsides while the final
    // rescan/drain still runs.)
    assert!(
        cleared_us >= first.fired_us + window_us_f,
        "the alert episode must span at least one window: \
         fired {:.0} µs, cleared {cleared_us:.0} µs",
        first.fired_us
    );
    let lag = (tcfg.short_windows as f64 + 2.0) * window_us_f;
    assert!(
        cleared_us <= crash_us + rec.time_to_clean_us + lag,
        "the alert must clear once the cluster is clean again: \
         cleared {cleared_us:.0} µs, crash {crash_us:.0} µs + time-to-clean {:.0} µs + lag {lag:.0} µs",
        rec.time_to_clean_us
    );
    assert!(slo.attainment < 1.0, "the storm must burn budget: {slo:?}");

    let p = run.point;
    let alert_latency_windows = (first.fired_window - crash_window) as f64;
    let config = "DeLiBA-K crash + ramp (telemetry)".to_string();
    let mut cells = Vec::new();
    {
        let mut cell = |workload: &str, unit: &'static str, measured: f64| {
            cells.push(Cell {
                config: config.clone(),
                workload: workload.into(),
                unit,
                measured,
                paper: None,
            });
        };
        cell("achieved", "KIOPS", p.achieved_kiops);
        cell("foreground p99", "µs", p.p99_us);
        cell("dropped", "ops", p.dropped as f64);
        cell("windows", "win", slo.windows as f64);
        cell("attainment", "frac", slo.attainment);
        cell("alerts", "win", slo.alerts.len() as f64);
        cell("alert latency", "win", alert_latency_windows);
        cell("alert fired", "ms", first.fired_us / 1e3);
        cell("alert cleared", "ms", cleared_us / 1e3);
        cell("time to clean", "ms", rec.time_to_clean_us / 1e3);
    }

    let artifacts = e
        .telemetry()
        .with(|r| TimelineArtifacts {
            report: run.report.clone(),
            timeline_json: r.timeline_json(),
            csv: r.csv(),
            prom: r.prom_series(&config, "open-loop"),
            chrome: r.chrome_json(),
        })
        .expect("recording");

    let exp = Experiment {
        id: "timeline".into(),
        caption: format!(
            "telemetry timeline: OSD crash at {CRASH_MS} ms + recovery storm under an \
             open-loop ramp to 72 KIOPS ({} µs windows, {} µs SLO target)",
            opts.window_us, opts.slo_p99_us
        ),
        cells,
    };
    (exp, artifacts)
}

/// [`timeline_with`] at the default window/SLO knobs.
pub fn timeline() -> (Experiment, TimelineArtifacts) {
    timeline_with(&TimelineOpts::default())
}

// ---------------------------------------------------------------------
// Deep-scrub cadence vs bit-rot (`harness scrub`)
// ---------------------------------------------------------------------

/// Scrub-rate overhead study with injected silent corruption: write-once
/// traces (no overwrite ever masks a flip) in both redundancy modes, a
/// seeded bit-rot burst mid-run, and a cadence sweep from aggressive to
/// lazy deep scrub plus a scrub-off reference.  Scrub walks the object
/// space at the configured rate, byte/parity-compares every readable
/// copy with costed media reads, and repairs mismatches with costed
/// writes.  The cadence knob controls how much of the object space each
/// run window scans; the foreground-overhead cells quantify what that
/// scanning costs the clients (≈ 0 at lab scale — the host path, not
/// the media, is the bottleneck).  Every armed cadence must find and
/// repair 100 % of the injected rot (the end-of-run drain pass
/// guarantees it); asserted here like a test.
///
/// Excluded from `harness all` for the same reason as `chaos` and
/// `recovery`.
pub fn scrub() -> Experiment {
    use deliba_cluster::RecoveryPolicy;
    use deliba_core::TraceOp;
    use deliba_fault::FaultSchedule;
    use deliba_sim::{SimDuration, SimTime};

    // High foreground concurrency on purpose: each OSD models 8 service
    // threads, so a lightly loaded cluster absorbs scrub into idle
    // threads and shows no interference at all.  4 jobs × qd 16 keeps
    // the service queues occupied, which is the regime where the scrub
    // cadence actually costs foreground latency.
    const JOBS: u64 = 4;
    const QD: u32 = 16;
    const OBJECTS_PER_JOB: u64 = 24;
    const BLOCK: u32 = 131_072; // heavy objects: scrub reads cost real media time
    const ROT_COPIES: u32 = 12;
    const ROT_AT_US: u64 = 2_000; // mid-writes: objects exist, run still live

    // Each job writes its own run of distinct 4 MiB-aligned objects
    // once, then reads every block back — write-once, so an injected
    // flip persists until scrub repairs it (and the read path must keep
    // serving clean bytes from the surviving copies meanwhile).
    let trace = |job: u64| -> Vec<TraceOp> {
        let obj = |i: u64| (job * OBJECTS_PER_JOB + i) * (4 << 20);
        let mut ops = Vec::with_capacity(2 * OBJECTS_PER_JOB as usize);
        for i in 0..OBJECTS_PER_JOB {
            ops.push(TraceOp::write(obj(i), BLOCK, true));
        }
        for i in 0..OBJECTS_PER_JOB {
            ops.push(TraceOp::read(obj(i), BLOCK, true));
        }
        ops
    };

    // `None` = scrub off (foreground reference; the rot stays latent),
    // `Some(µs)` = deep-scrub period.
    let cadences: Vec<Option<u64>> = vec![None, Some(50), Some(400), Some(1_600)];
    let mut combos = Vec::new();
    for mode in [Mode::Replication, Mode::ErasureCoding] {
        for &iv in &cadences {
            combos.push((mode, iv));
        }
    }
    let runs = crate::runner::par_map(combos.clone(), |(mode, iv)| {
        let policy = match iv {
            None => RecoveryPolicy::default(),
            Some(us) => {
                RecoveryPolicy::default().with_scrub(SimDuration::from_micros(us), 8)
            }
        };
        let cfg = EngineConfig::new(Generation::DeLiBAK, true, mode).with_recovery(policy);
        let mut e = Engine::new(cfg);
        e.set_fault_schedule(
            FaultSchedule::new().bit_rot(SimTime::from_nanos(ROT_AT_US * 1_000), ROT_COPIES),
        );
        let r = e.run_trace((0..JOBS).map(trace).collect(), QD);
        assert_eq!(
            r.verify_failures, 0,
            "reads must never consume a corrupt copy ({} scrub {iv:?} µs)",
            mode.label()
        );
        r
    });

    let mut cells = Vec::new();
    for ((mode, iv), r) in combos.iter().zip(&runs) {
        let rec = r.recovery.expect("armed runs report recovery counters");
        let config = match iv {
            None => format!("{} scrub off", mode.label()),
            Some(us) => format!("{} scrub {us} µs", mode.label()),
        };
        let mut cell = |workload: &str, unit: &'static str, measured: f64, paper: Option<f64>| {
            cells.push(Cell {
                config: config.clone(),
                workload: workload.into(),
                unit,
                measured,
                paper,
            });
        };
        cell("foreground mean latency", "µs", r.mean_latency_us, None);
        // Overhead vs this mode's scrub-off reference.  The lab-scale
        // finding is that it is ≈ 0: the host path is the bottleneck
        // (the paper's whole premise) and the OSD thread banks have
        // headroom, so scrub rides in otherwise-idle media time.
        let base = runs[combos
            .iter()
            .position(|&(m, i)| m == *mode && i.is_none())
            .expect("reference row exists")]
        .mean_latency_us;
        cell(
            "foreground latency overhead",
            "%",
            100.0 * (r.mean_latency_us - base) / base,
            None,
        );
        cell("bitrot injected", "ops", rec.bitrot_injected as f64, None);
        if iv.is_some() {
            cell("scrub objects examined", "ops", rec.scrub_objects as f64, None);
            cell("scrub rate", "obj/s", rec.scrub_objects as f64 / r.window_s.max(1e-12), None);
            cell(
                "bitrot detected",
                "ops",
                rec.bitrot_detected as f64,
                Some(rec.bitrot_injected as f64),
            );
            cell(
                "bitrot repaired",
                "ops",
                rec.bitrot_repaired as f64,
                Some(rec.bitrot_injected as f64),
            );
            cell("repair writes", "ops", rec.objects_repaired as f64, None);
        }
        // 100 % detection and repair on every armed cadence — the
        // end-of-run drain pass closes whatever the periodic ticks
        // missed.  Deterministic, so asserted like a test.
        if iv.is_some() {
            assert_eq!(
                rec.bitrot_injected, ROT_COPIES as u64,
                "{config}: the burst must land in full"
            );
            assert_eq!(
                rec.bitrot_detected, rec.bitrot_injected,
                "{config}: every flip found: {rec:?}"
            );
            assert_eq!(
                rec.bitrot_repaired, rec.bitrot_injected,
                "{config}: every flip fixed: {rec:?}"
            );
        }
    }

    // Per mode: the cadence knob must actually control the scan rate —
    // a more aggressive period examines at least as many objects over
    // the same run (the drain pass puts a shared floor under all of
    // them, so the relation is ≥, not >).
    for (m, mode) in [Mode::Replication, Mode::ErasureCoding].iter().enumerate() {
        let scanned = |i: usize| {
            runs[m * cadences.len() + i].recovery.expect("armed").scrub_objects
        };
        assert!(
            scanned(1) >= scanned(2) && scanned(2) >= scanned(3),
            "{}: scan volume must grow with cadence: 50 µs {} / 400 µs {} / 1600 µs {}",
            mode.label(),
            scanned(1),
            scanned(2),
            scanned(3)
        );
        assert!(
            scanned(3) >= JOBS * OBJECTS_PER_JOB,
            "{}: even the laziest cadence completes at least one full pass",
            mode.label()
        );
    }

    Experiment {
        id: "scrub".into(),
        caption: format!(
            "deep-scrub cadence sweep vs {ROT_COPIES} injected bit-rot flips \
             (write-once traces, both redundancy modes)"
        ),
        cells,
    }
}

/// Table I companion: verify the accelerator models agree with the
/// functional software implementations (placement and parity equality),
/// returning the number of cross-checked operations.
pub fn accelerator_fidelity() -> u64 {
    use deliba_crush::MapBuilder;
    use deliba_fpga::accel::CrushAccelerator;
    let map = MapBuilder::new().build(8, 4);
    let mut checked = 0;
    for kind in [AccelKind::Straw2, AccelKind::Straw, AccelKind::Tree, AccelKind::List, AccelKind::Uniform] {
        let mut accel = CrushAccelerator::new(kind);
        for x in 0..200u32 {
            let (hw, _) = accel.place(&map, 0, x, 3);
            assert_eq!(hw, map.do_rule(0, x, 3));
            checked += 1;
        }
    }
    let _ = table_i(AccelKind::Straw2);
    checked
}
