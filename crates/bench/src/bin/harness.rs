//! The experiment harness: regenerate every table and figure of the
//! DeLiBA-K paper.
//!
//! ```text
//! harness [experiment ...] [--json] [--out <path>] [--serial]
//!         [--baseline <file>]
//! harness trace [--trace-depth <off|spans|full>] [--out <dir>]
//! harness loadcurve [--rate <kiops,...>] [--arrival <poisson|bursty|diurnal>]
//!                   [--zipf-s <s>] [--admission-cap <n>] [--json] [--out <path>]
//! harness timeline [--window-us <n>] [--slo-p99-us <n>] [--out <dir>]
//!
//! experiments: fig3 fig4 fig6 fig7 fig8 fig9
//!              table1 table2 table3 power realworld headline dfx
//!              ablation mtu breakdown
//!              perf (wall-clock gate; never part of `all`)
//!              chaos (fault-plane soak; never part of `all`)
//!              recovery (degraded-mode SLO sweep; never part of `all`)
//!              scrub (deep-scrub cadence vs bit-rot; never part of `all`)
//!              trace (flight-recorder export; never part of `all`)
//!              loadcurve (open-loop latency-under-load sweep; never
//!                         part of `all`)
//!              timeline (telemetry-plane timeline + burn-rate alert
//!                        experiment; never part of `all`)
//!              all (default)
//!
//! --json           emit the results as JSON instead of text tables
//! --out <path>     write the JSON to <path> (implies --json)
//! --baseline <f>   diff every cell of this run against a previously
//!                  saved harness JSON (e.g. BENCH_harness.json) and
//!                  exit nonzero when any ev/s cell lost more than 20 %
//!                  — the CI perf-ratchet (pairs with `perf`)
//! --serial         run every sweep on one thread (also: DELIBA_JOBS=n)
//! --trace-depth    recorder depth for `trace` (default: full; also the
//!                  DELIBA_TRACE env var — the flag wins)
//! --rate           loadcurve offered rates, comma-separated KIOPS
//!                  (default: 2,4,8,16,32,64,96,128)
//! --arrival        loadcurve arrival process (default: poisson)
//! --zipf-s         loadcurve Zipf skew of block selection (default: 0.9)
//! --admission-cap  loadcurve in-flight bound; arrivals past it are
//!                  dropped and counted (default: 256)
//! --window-us      timeline telemetry window width in µs of virtual
//!                  time (default: 500)
//! --slo-p99-us     timeline SLO latency target in µs (default: 400)
//! ```
//!
//! `loadcurve` runs alone: its JSON output is one `RunReport` per
//! generation, each carrying the sweep in its `load_curve` section —
//! not the figure-cell array the other experiments emit.  Latency is
//! measured from each op's *intended* arrival instant, so the curves
//! are coordinated-omission-safe by construction.
//!
//! `trace` runs alone (it is a file-emitting export, not a figure): it
//! writes `trace-<cell>.trace.json` (Chrome trace-event JSON — load in
//! Perfetto or `chrome://tracing`) and `trace-<cell>.prom` (Prometheus
//! text exposition) per cell into the `--out` directory (default `.`)
//! and prints each cell's worst-K tail-latency attribution table.
//!
//! `timeline` also runs alone: it runs the telemetry-plane experiment
//! (open-loop ramp + mid-run OSD crash with recovery armed, asserting
//! the burn-rate alert correlates with the degrade onset) and, when
//! `--out <dir>` is given, writes `timeline.json` (the machine-checked
//! timeline document), `timeline.csv`, `timeline.prom` (timestamped
//! series), `timeline.trace.json` (Chrome counter tracks) and
//! `timeline.report.json` (the carrier `RunReport` with its `slo`
//! section) into the directory.  Telemetry can also be armed on any
//! run via the `DELIBA_TELEMETRY` env var (default config).
//!
//! Sweeps run cells on `DELIBA_JOBS` worker threads (default: all
//! cores); output is byte-identical to a serial run either way.

use deliba_bench::*;

/// Everything `all` expands to.  `perf` is deliberately absent: its
/// wall-clock cells are nondeterministic and `harness all` output must
/// stay bit-reproducible run to run.  `chaos` is absent for a different
/// reason: it describes the fault plane, not a paper figure, and keeping
/// it out preserves the fault-free baseline byte for byte.
const ALL: &[&str] = &[
    "table1", "table2", "table3", "fig3", "fig4", "fig6", "fig7", "fig8", "fig9",
    "power", "realworld", "headline", "dfx", "ablation", "mtu", "breakdown",
];

const KNOWN: &[&str] = &[
    "all", "table1", "table2", "table3", "fig3", "fig4", "fig6", "fig7", "fig8", "fig9",
    "power", "realworld", "headline", "dfx", "ablation", "mtu", "breakdown", "perf",
    "chaos", "recovery", "scrub", "trace", "loadcurve", "timeline",
];

/// The `--baseline` comparison: diff this run's cells against a
/// previously saved harness JSON (the committed `BENCH_harness.json`),
/// print per-cell deltas, and report whether any events-per-second cell
/// regressed by more than 20 % — the tolerance wide enough for a shared
/// CI box, tight enough to catch a real structural slowdown.
///
/// Cells are matched on `(experiment id, config, workload)`; baseline
/// cells with no counterpart in this run are ignored (a renamed or
/// retired cell is not a regression), and new cells print as such.
/// Deltas go to stderr so `--json` stdout stays machine-parseable.
fn compare_baseline(path: &str, results: &[Experiment]) -> bool {
    let body = match std::fs::read_to_string(path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("cannot read baseline {path}: {e}");
            std::process::exit(1);
        }
    };
    let base: serde::Value = match serde_json::from_str(&body) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("baseline {path} is not harness JSON: {e}");
            std::process::exit(1);
        }
    };
    fn as_str(v: Option<&serde::Value>) -> &str {
        match v {
            Some(serde::Value::Str(s)) => s,
            _ => "",
        }
    }
    fn as_f64(v: Option<&serde::Value>) -> Option<f64> {
        match v {
            Some(serde::Value::Float(f)) => Some(*f),
            Some(serde::Value::UInt(u)) => Some(*u as f64),
            Some(serde::Value::Int(i)) => Some(*i as f64),
            _ => None,
        }
    }
    let serde::Value::Array(exps) = &base else {
        eprintln!("baseline {path} is not a harness experiment array");
        std::process::exit(1);
    };
    let mut old: std::collections::BTreeMap<(String, String, String), f64> =
        std::collections::BTreeMap::new();
    for exp in exps {
        let id = as_str(exp.get("id"));
        let Some(serde::Value::Array(cells)) = exp.get("cells") else { continue };
        for cell in cells {
            if let Some(m) = as_f64(cell.get("measured")) {
                old.insert(
                    (
                        id.to_string(),
                        as_str(cell.get("config")).to_string(),
                        as_str(cell.get("workload")).to_string(),
                    ),
                    m,
                );
            }
        }
    }
    const TOLERANCE: f64 = 0.20;
    let mut regressed = false;
    eprintln!("== baseline comparison vs {path}");
    for exp in results {
        for c in &exp.cells {
            let key = (exp.id.clone(), c.config.clone(), c.workload.clone());
            match old.get(&key) {
                Some(&was) if was != 0.0 => {
                    let delta = (c.measured - was) / was;
                    // Only throughput cells gate: wall-clock and ratio
                    // cells have their own dedicated CI assertions.
                    let bad = c.unit == "ev/s" && delta < -TOLERANCE;
                    regressed |= bad;
                    eprintln!(
                        "  {:28} {:38} {:>14.1} -> {:>14.1} {:>+8.1}% {}{}",
                        c.config,
                        c.workload,
                        was,
                        c.measured,
                        delta * 100.0,
                        c.unit,
                        if bad { "  REGRESSION" } else { "" }
                    );
                }
                _ => eprintln!(
                    "  {:28} {:38} (new cell: {:.3} {})",
                    c.config, c.workload, c.measured, c.unit
                ),
            }
        }
    }
    if regressed {
        eprintln!("baseline comparison FAILED: an ev/s cell regressed more than 20%");
    } else {
        eprintln!("baseline comparison passed (ev/s tolerance 20%)");
    }
    regressed
}

fn usage() -> ! {
    eprintln!(
        "usage: harness [experiment ...] [--json] [--out <path>] [--serial] [--baseline <file>]"
    );
    eprintln!("       harness trace [--trace-depth <off|spans|full>] [--out <dir>]");
    eprintln!(
        "       harness loadcurve [--rate <kiops,...>] [--arrival <kind>] \
         [--zipf-s <s>] [--admission-cap <n>]"
    );
    eprintln!("       harness timeline [--window-us <n>] [--slo-p99-us <n>] [--out <dir>]");
    eprintln!("experiments: {}", KNOWN.join(" "));
    std::process::exit(2);
}

/// The `trace` subcommand: run the flight-recorder cells and write each
/// one's Chrome trace + Prometheus dump into `out_dir`.
fn run_trace(depth_flag: Option<String>, out_dir: Option<String>) {
    let depth_str = depth_flag
        .or_else(|| std::env::var("DELIBA_TRACE").ok())
        .unwrap_or_else(|| "full".into());
    let Some(depth) = deliba_sim::TraceDepth::parse(&depth_str) else {
        eprintln!("bad trace depth: {depth_str} (use off, spans or full)");
        std::process::exit(2);
    };
    if !depth.is_on() {
        eprintln!("trace depth is off — nothing to record (use --trace-depth spans|full)");
        std::process::exit(2);
    }
    let dir = std::path::PathBuf::from(out_dir.unwrap_or_else(|| ".".into()));
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("cannot create {}: {e}", dir.display());
        std::process::exit(1);
    }
    println!("== trace — flight-recorder export (depth {})", depth.label());
    for cell in run_trace_cells(depth) {
        let chrome_path = dir.join(format!("trace-{}.trace.json", cell.name));
        let prom_path = dir.join(format!("trace-{}.prom", cell.name));
        for (path, body) in [(&chrome_path, &cell.chrome), (&prom_path, &cell.prom)] {
            if let Err(e) = std::fs::write(path, body) {
                eprintln!("cannot write {}: {e}", path.display());
                std::process::exit(1);
            }
        }
        println!(
            "  {} → {} ({} events) + {}",
            cell.name,
            chrome_path.display(),
            cell.stats.held,
            prom_path.display()
        );
        print!("{}", worst_k_table(&cell));
    }
}

/// The `timeline` subcommand: run the telemetry-plane experiment (the
/// in-run alert asserts fire inside `timeline_with`) and write the four
/// series exports plus the carrier report into `out_dir` when given.
fn run_timeline(opts: TimelineOpts, out_dir: Option<String>) {
    let (exp, art) = timeline_with(&opts);
    exp.print();
    let Some(dir) = out_dir else { return };
    let dir = std::path::PathBuf::from(dir);
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("cannot create {}: {e}", dir.display());
        std::process::exit(1);
    }
    let report_body = serde_json::to_string_pretty(&art.report).expect("serializable") + "\n";
    let files = [
        ("timeline.json", &art.timeline_json),
        ("timeline.csv", &art.csv),
        ("timeline.prom", &art.prom),
        ("timeline.trace.json", &art.chrome),
        ("timeline.report.json", &report_body),
    ];
    for (name, body) in files {
        let path = dir.join(name);
        if let Err(e) = std::fs::write(&path, body) {
            eprintln!("cannot write {}: {e}", path.display());
            std::process::exit(1);
        }
        println!("  wrote {}", path.display());
    }
}

/// The `loadcurve` subcommand: run the open-loop sweep, print the text
/// table or emit one `RunReport` per generation (curve in `load_curve`).
fn run_loadcurve(opts: LoadCurveOpts, json: bool, out: Option<String>) {
    let (exp, reports) = loadcurve_with(&opts);
    if !json {
        exp.print();
        return;
    }
    let body = serde_json::to_string_pretty(&reports).expect("serializable");
    match out {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, body + "\n") {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(1);
            }
        }
        None => println!("{body}"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json = false;
    let mut serial = false;
    let mut out: Option<String> = None;
    let mut baseline: Option<String> = None;
    let mut trace_depth: Option<String> = None;
    let mut lc = LoadCurveOpts::default();
    let mut lc_flag_seen = false;
    let mut tl = TimelineOpts::default();
    let mut tl_flag_seen = false;
    let mut wanted: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json = true,
            "--serial" => serial = true,
            "--out" => match it.next() {
                Some(p) => {
                    json = true; // --out without --json still means JSON
                    out = Some(p);
                }
                None => {
                    eprintln!("--out requires a path");
                    usage();
                }
            },
            "--baseline" => match it.next() {
                Some(p) => baseline = Some(p),
                None => {
                    eprintln!("--baseline requires a harness JSON path");
                    usage();
                }
            },
            "--trace-depth" => match it.next() {
                Some(d) => trace_depth = Some(d),
                None => {
                    eprintln!("--trace-depth requires off, spans or full");
                    usage();
                }
            },
            "--rate" => {
                let Some(list) = it.next() else {
                    eprintln!("--rate requires a comma-separated KIOPS list");
                    usage();
                };
                let rates: Option<Vec<f64>> = list
                    .split(',')
                    .map(|r| r.trim().parse::<f64>().ok().filter(|v| *v > 0.0))
                    .collect();
                match rates {
                    Some(r) if !r.is_empty() => lc.rates_kiops = r,
                    _ => {
                        eprintln!("bad --rate list: {list} (want e.g. 2,8,32,128)");
                        usage();
                    }
                }
                lc_flag_seen = true;
            }
            "--arrival" => {
                let Some(kind) = it.next() else {
                    eprintln!("--arrival requires poisson, bursty or diurnal");
                    usage();
                };
                match deliba_workload::ArrivalKind::parse(&kind) {
                    Some(k) => lc.arrival = k,
                    None => {
                        eprintln!("bad --arrival: {kind} (use poisson, bursty or diurnal)");
                        usage();
                    }
                }
                lc_flag_seen = true;
            }
            "--zipf-s" => {
                match it.next().and_then(|s| s.parse::<f64>().ok()).filter(|s| *s >= 0.0) {
                    Some(s) => lc.zipf_s = s,
                    None => {
                        eprintln!("--zipf-s requires a nonnegative number");
                        usage();
                    }
                }
                lc_flag_seen = true;
            }
            "--admission-cap" => {
                match it.next().and_then(|s| s.parse::<u32>().ok()).filter(|c| *c > 0) {
                    Some(c) => lc.admission_cap = c,
                    None => {
                        eprintln!("--admission-cap requires a positive integer");
                        usage();
                    }
                }
                lc_flag_seen = true;
            }
            "--window-us" => {
                match it.next().and_then(|s| s.parse::<u64>().ok()).filter(|w| *w > 0) {
                    Some(w) => tl.window_us = w,
                    None => {
                        eprintln!("--window-us requires a positive integer (µs)");
                        usage();
                    }
                }
                tl_flag_seen = true;
            }
            "--slo-p99-us" => {
                match it.next().and_then(|s| s.parse::<u64>().ok()).filter(|t| *t > 0) {
                    Some(t) => tl.slo_p99_us = t,
                    None => {
                        eprintln!("--slo-p99-us requires a positive integer (µs)");
                        usage();
                    }
                }
                tl_flag_seen = true;
            }
            "--help" | "-h" => usage(),
            other if other.starts_with('-') => {
                eprintln!("unknown flag: {other}");
                usage();
            }
            name => wanted.push(name.to_string()),
        }
    }

    // Validate *every* name before running anything: a typo after three
    // valid experiments must not exit mid-run with partial output.
    let unknown: Vec<&String> = wanted.iter().filter(|w| !KNOWN.contains(&w.as_str())).collect();
    if !unknown.is_empty() {
        for u in unknown {
            eprintln!("unknown experiment: {u}");
        }
        usage();
    }

    // Expand `all` in place, then dedupe preserving first occurrence, so
    // `harness fig6 all fig6` runs each experiment exactly once.
    if wanted.is_empty() {
        wanted.push("all".into());
    }
    let mut expanded: Vec<String> = Vec::new();
    for w in wanted {
        if w == "all" {
            expanded.extend(ALL.iter().map(|s| s.to_string()));
        } else {
            expanded.push(w);
        }
    }
    let mut seen = std::collections::BTreeSet::new();
    expanded.retain(|w| seen.insert(w.clone()));

    // `trace` is a file-emitting export with its own flags (`--out` is a
    // directory, not a JSON path), so it must run alone.
    if expanded.iter().any(|w| w == "trace" || w == "loadcurve" || w == "timeline")
        && baseline.is_some()
    {
        eprintln!(
            "--baseline applies to figure-cell experiments (e.g. perf), not \
             trace/loadcurve/timeline"
        );
        usage();
    }
    if expanded.iter().any(|w| w == "trace") {
        if expanded.len() != 1 {
            eprintln!("`trace` runs alone (its --out is a directory, not a JSON path)");
            usage();
        }
        run_trace(trace_depth, out);
        return;
    }
    if trace_depth.is_some() {
        eprintln!("--trace-depth only applies to the `trace` experiment");
        usage();
    }

    runner::set_serial(serial);

    // `loadcurve` also runs alone: its JSON is per-generation
    // `RunReport`s (curve in `load_curve`), not the figure-cell array.
    if expanded.iter().any(|w| w == "loadcurve") {
        if expanded.len() != 1 {
            eprintln!("`loadcurve` runs alone (its JSON schema is RunReports, not figure cells)");
            usage();
        }
        run_loadcurve(lc, json, out);
        return;
    }
    if lc_flag_seen {
        eprintln!("--rate/--arrival/--zipf-s/--admission-cap only apply to `loadcurve`");
        usage();
    }

    // `timeline` runs alone too: its `--out` is a directory of series
    // exports, not a JSON path.
    if expanded.iter().any(|w| w == "timeline") {
        if expanded.len() != 1 {
            eprintln!("`timeline` runs alone (its --out is a directory of series exports)");
            usage();
        }
        run_timeline(tl, out);
        return;
    }
    if tl_flag_seen {
        eprintln!("--window-us/--slo-p99-us only apply to `timeline`");
        usage();
    }

    let mut results: Vec<Experiment> = Vec::new();
    for w in &expanded {
        let exp = match w.as_str() {
            "fig3" => fig3(),
            "fig4" => fig4(),
            "fig6" => fig6(),
            "fig7" => fig7(),
            "fig8" => fig8(),
            "fig9" => fig9(),
            "table1" => table1(),
            "table2" => table2(),
            "table3" => table3(),
            "power" => power(),
            "realworld" => realworld(),
            "headline" => headline(),
            "dfx" => dfx(),
            "ablation" => ablation(),
            "mtu" => mtu(),
            "breakdown" => breakdown(),
            "perf" => perf(),
            "chaos" => chaos(),
            "recovery" => recovery(),
            "scrub" => scrub(),
            other => unreachable!("validated above: {other}"),
        };
        if !json {
            exp.print();
        }
        results.push(exp);
    }
    if json {
        let body = serde_json::to_string_pretty(&results).expect("serializable");
        match &out {
            Some(path) => {
                if let Err(e) = std::fs::write(path, body + "\n") {
                    eprintln!("cannot write {path}: {e}");
                    std::process::exit(1);
                }
            }
            None => println!("{body}"),
        }
    }
    if let Some(path) = &baseline {
        if compare_baseline(path, &results) {
            std::process::exit(1);
        }
    }
}
