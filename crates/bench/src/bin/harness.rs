//! The experiment harness: regenerate every table and figure of the
//! DeLiBA-K paper.
//!
//! ```text
//! harness [experiment ...] [--json]
//!
//! experiments: fig3 fig4 fig6 fig7 fig8 fig9
//!              table1 table2 table3 power realworld headline dfx
//!              ablation mtu breakdown
//!              all (default)
//! ```

use deliba_bench::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let mut wanted: Vec<String> = args.into_iter().filter(|a| a != "--json").collect();
    if wanted.is_empty() || wanted.iter().any(|w| w == "all") {
        wanted = [
            "table1", "table2", "table3", "fig3", "fig4", "fig6", "fig7", "fig8", "fig9",
            "power", "realworld", "headline", "dfx", "ablation", "mtu", "breakdown",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
    }

    let mut results: Vec<Experiment> = Vec::new();
    for w in &wanted {
        let exp = match w.as_str() {
            "fig3" => fig3(),
            "fig4" => fig4(),
            "fig6" => fig6(),
            "fig7" => fig7(),
            "fig8" => fig8(),
            "fig9" => fig9(),
            "table1" => table1(),
            "table2" => table2(),
            "table3" => table3(),
            "power" => power(),
            "realworld" => realworld(),
            "headline" => headline(),
            "dfx" => dfx(),
            "ablation" => ablation(),
            "mtu" => mtu(),
            "breakdown" => breakdown(),
            other => {
                eprintln!("unknown experiment: {other}");
                std::process::exit(2);
            }
        };
        if !json {
            exp.print();
        }
        results.push(exp);
    }
    if json {
        println!("{}", serde_json::to_string_pretty(&results).expect("serializable"));
    }
}
