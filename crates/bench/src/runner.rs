//! Parallel sweep runner.
//!
//! Every experiment is a sweep over independent *cells* (one engine run
//! per cell, each with its own seed and its own `Engine`), so cells can
//! execute on worker threads with no shared state.  Determinism is
//! preserved by construction: workers pull cell indices from an atomic
//! counter, stash `(index, result)` pairs, and the caller receives the
//! results sorted back into submission order — byte-identical to a
//! serial run regardless of scheduling.
//!
//! Worker count comes from, in priority order: the `--serial` flag
//! ([`set_serial`]), the `DELIBA_JOBS` environment variable, then
//! [`std::thread::available_parallelism`].  Nested calls (an experiment
//! that itself calls [`par_map`] from inside a cell) degrade to serial
//! execution rather than oversubscribing.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Process-wide "force serial" switch (the harness `--serial` flag).
static FORCE_SERIAL: AtomicBool = AtomicBool::new(false);

thread_local! {
    /// Set while a worker is inside `par_map`; nested sweeps run serial.
    static IN_PAR: Cell<bool> = const { Cell::new(false) };
}

/// Force every subsequent [`par_map`] to run on the calling thread.
pub fn set_serial(serial: bool) {
    FORCE_SERIAL.store(serial, Ordering::SeqCst);
}

/// Worker count for sweeps: `DELIBA_JOBS` if set (clamped to ≥ 1), else
/// the machine's available parallelism.  Returns 1 when `--serial` is in
/// effect.
pub fn jobs() -> usize {
    if FORCE_SERIAL.load(Ordering::SeqCst) {
        return 1;
    }
    if let Ok(v) = std::env::var("DELIBA_JOBS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Map `f` over `items` on up to [`jobs`] worker threads, returning the
/// results in submission order (index `i` of the output corresponds to
/// index `i` of the input, exactly as a serial `map` would).
///
/// Falls back to a plain serial loop when only one job is configured,
/// when there is one item or fewer, or when called from inside another
/// `par_map` (nesting guard).
pub fn par_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let workers = jobs().min(n);
    let nested = IN_PAR.with(|c| c.get());
    if workers <= 1 || n <= 1 || nested {
        return items.into_iter().map(f).collect();
    }

    // Cells are pulled from a shared counter so a slow cell never blocks
    // the queue behind it (dynamic load balancing), and results carry
    // their original index so output order is deterministic.
    let work: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(n));

    crossbeam::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|_| {
                IN_PAR.with(|c| c.set(true));
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let item = work[i].lock().unwrap().take().expect("each cell taken once");
                    let r = f(item);
                    results.lock().unwrap().push((i, r));
                }
                IN_PAR.with(|c| c.set(false));
            });
        }
    })
    .expect("sweep worker panicked");

    let mut out = results.into_inner().unwrap();
    out.sort_by_key(|(i, _)| *i);
    debug_assert_eq!(out.len(), n);
    out.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<u64> = (0..64).collect();
        let out = par_map(items.clone(), |x| x * 3 + 1);
        let expect: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn par_map_handles_empty_and_single() {
        assert_eq!(par_map(Vec::<u32>::new(), |x| x), Vec::<u32>::new());
        assert_eq!(par_map(vec![7u32], |x| x + 1), vec![8]);
    }

    #[test]
    fn nested_par_map_runs_serial_and_stays_ordered() {
        let out = par_map((0..8u32).collect(), |i| {
            // Inner sweep must not deadlock or reorder.
            let inner = par_map((0..4u32).collect(), move |j| i * 10 + j);
            inner.iter().sum::<u32>()
        });
        let expect: Vec<u32> = (0..8).map(|i| (0..4).map(|j| i * 10 + j).sum()).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn serial_flag_forces_one_job() {
        set_serial(true);
        assert_eq!(jobs(), 1);
        let out = par_map((0..16u32).collect(), |x| x * x);
        assert_eq!(out, (0..16u32).map(|x| x * x).collect::<Vec<_>>());
        set_serial(false);
    }
}
