#![warn(missing_docs)]

//! # deliba-bench — the experiment harness
//!
//! One function per table/figure of the paper; the `harness` binary
//! drives them and prints paper-vs-measured rows.  Integration tests
//! assert the *shape* criteria from DESIGN.md (who wins, by roughly what
//! factor) rather than absolute values.

pub mod experiments;
pub mod runner;
pub mod trace;

pub use experiments::*;
pub use trace::{run_trace_cells, worst_k_table, TraceCell, WORST_K};
