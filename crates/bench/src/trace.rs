//! `harness trace` — flight-recorder export cells.
//!
//! Runs a small, pinned set of cells with the per-I/O flight recorder
//! armed and snapshots each one as a Chrome trace-event JSON (load it
//! in Perfetto / `chrome://tracing`), a Prometheus text-exposition
//! dump, and a worst-K tail-latency attribution table.  The cells:
//!
//! * one latency probe per framework generation (D1 / D2 / DK,
//!   rand-read 4 kB, qd 1) — the Table-II span structure on a timeline;
//! * one DeLiBA-K chaos cell (write-then-read-back under the pinned
//!   fault schedule) — every fault class fires mid-trace and lands in
//!   the `fault` track as instant events.
//!
//! Everything here is deterministic at a fixed depth: two same-seed
//! invocations emit byte-identical `.trace.json` and `.prom` files
//! (the CI trace-smoke job `cmp`s them).

use crate::experiments::PROBE_OPS;
use deliba_core::{
    prometheus_dump, Engine, EngineConfig, FioSpec, Generation, Mode, Pattern, RunReport, RwMode,
    TraceOp,
};
use deliba_fault::{FaultSchedule, ResiliencePolicy};
use deliba_fpga::RmId;
use deliba_net::LinkFaultProfile;
use deliba_qdma::DmaFaultProfile;
use deliba_sim::trace::{IoChain, TraceStats};
use deliba_sim::{SimDuration, SimTime, Stage, TraceDepth};

/// How many outlier I/Os the attribution table ranks.
pub const WORST_K: usize = 8;

/// Ops per chaos-cell job (writes + read-backs).
const CHAOS_OPS_PER_JOB: u64 = 600;

/// One flight-recorded cell: the run report plus every export form.
#[derive(Debug, Clone)]
pub struct TraceCell {
    /// File-stem name, e.g. `"dk-rand-read-4k"`.
    pub name: &'static str,
    /// The run's report (breakdown attached — tracing implies stages).
    pub report: RunReport,
    /// Chrome trace-event JSON (Perfetto-loadable).
    pub chrome: String,
    /// Prometheus text-exposition dump.
    pub prom: String,
    /// Worst-K I/O chains by end-to-end span.
    pub worst: Vec<IoChain>,
    /// Recorder ring statistics.
    pub stats: TraceStats,
}

fn snapshot(name: &'static str, report: RunReport, engine: &Engine) -> TraceCell {
    let trace = engine.trace();
    TraceCell {
        name,
        chrome: trace.chrome_json().expect("trace cells run with the recorder on"),
        prom: prometheus_dump(&report, trace.stats().as_ref()),
        worst: trace.worst_k(WORST_K),
        stats: trace.stats().expect("recorder on"),
        report,
    }
}

/// The chaos cell's pinned fault schedule: one instance of every fault
/// class inside the ~10 ms virtual window of the write/read-back soak.
fn chaos_schedule() -> FaultSchedule {
    let ms = |n: u64| SimTime::from_nanos(n * 1_000_000);
    FaultSchedule::new()
        .osd_crash(ms(1), 7)
        .osd_flap(ms(2), 19, SimDuration::from_millis(2))
        .link_degrade(ms(3), LinkFaultProfile { drop_p: 0.15, corrupt_p: 0.05 })
        .link_restore(ms(5))
        .dfx_swap(ms(6), RmId::Tree)
        .dma_degrade(ms(7), DmaFaultProfile { h2c_error_p: 0.1, c2h_error_p: 0.1, exhaust_p: 0.2 })
        .dma_restore(ms(8))
        .card_outage(ms(9), SimDuration::from_millis(2))
}

fn chaos_jobs() -> Vec<Vec<TraceOp>> {
    const JOBS: u64 = 2;
    let trace = |job: u64| -> Vec<TraceOp> {
        let half = CHAOS_OPS_PER_JOB / 2;
        let base = job * half * 4096;
        let mut ops = Vec::with_capacity(CHAOS_OPS_PER_JOB as usize);
        for i in 0..half {
            ops.push(TraceOp::write(base + i * 4096, 4096, true));
        }
        for i in 0..half {
            ops.push(TraceOp::read(base + i * 4096, 4096, true));
        }
        ops
    };
    (0..JOBS).map(trace).collect()
}

/// Run every trace cell at `depth` (which must be on).
pub fn run_trace_cells(depth: TraceDepth) -> Vec<TraceCell> {
    assert!(depth.is_on(), "trace cells need a recording depth");
    let mut cells = Vec::new();
    for (name, g) in [
        ("d1-rand-read-4k", Generation::DeLiBA1),
        ("d2-rand-read-4k", Generation::DeLiBA2),
        ("dk-rand-read-4k", Generation::DeLiBAK),
    ] {
        let cfg = EngineConfig::new(g, true, Mode::Replication)
            .with_tracing()
            .with_trace_depth(depth);
        let mut e = Engine::new(cfg);
        let report = e.run_fio(&FioSpec::latency_probe(RwMode::Read, Pattern::Rand, 4096, PROBE_OPS));
        assert_eq!(e.verify_failures(), 0);
        cells.push(snapshot(name, report, &e));
    }

    let cfg = EngineConfig::new(Generation::DeLiBAK, true, Mode::Replication)
        .with_resilience(ResiliencePolicy::default())
        .with_tracing()
        .with_trace_depth(depth);
    let mut e = Engine::new(cfg);
    e.set_fault_schedule(chaos_schedule());
    let report = e.run_trace(chaos_jobs(), 4);
    assert_eq!(e.verify_failures(), 0);
    cells.push(snapshot("dk-chaos-replication", report, &e));
    cells
}

/// Human-readable worst-K attribution table: each outlier's end-to-end
/// span plus the stage that dominated it.
pub fn worst_k_table(cell: &TraceCell) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "  {} — worst {} I/Os by end-to-end span ({} ops, depth {}, {} events held, {} dropped):\n",
        cell.name,
        cell.worst.len(),
        cell.report.ops,
        cell.stats.depth.label(),
        cell.stats.held,
        cell.stats.dropped,
    ));
    for (rank, chain) in cell.worst.iter().enumerate() {
        let total = chain.total_ns();
        let (stage, span) = Stage::ALL
            .iter()
            .map(|&s| (s, chain.span_ns(s)))
            .max_by_key(|&(_, ns)| ns)
            .expect("chains carry spans");
        let share = if total > 0 { 100.0 * span as f64 / total as f64 } else { 0.0 };
        out.push_str(&format!(
            "    #{:<2} io {:>6}  lane {:>2}  total {:>9.1} µs  at {:>9.1} µs  slowest: {} {:>8.1} µs ({:>4.1} %)\n",
            rank + 1,
            chain.io,
            chain.lane,
            total as f64 / 1_000.0,
            chain.begin_ns() as f64 / 1_000.0,
            stage.label(),
            span as f64 / 1_000.0,
            share,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_cells_export_all_forms() {
        let cells = run_trace_cells(TraceDepth::Full);
        assert_eq!(cells.len(), 4);
        for cell in &cells {
            assert!(cell.chrome.starts_with("{\"displayTimeUnit\""), "{}", cell.name);
            assert!(cell.chrome.ends_with("]}\n"), "{}", cell.name);
            assert!(cell.prom.contains("deliba_run_mean_latency_us"), "{}", cell.name);
            assert!(cell.prom.contains("deliba_stage_latency_us"), "{}", cell.name);
            assert!(cell.prom.contains("deliba_trace_events_held"), "{}", cell.name);
            assert!(!cell.worst.is_empty() && cell.worst.len() <= WORST_K, "{}", cell.name);
            // Worst-K is ranked by total span, descending.
            for w in cell.worst.windows(2) {
                assert!(w[0].total_ns() >= w[1].total_ns(), "{}", cell.name);
            }
            assert!(cell.stats.held > 0, "{}", cell.name);
            let table = worst_k_table(cell);
            assert!(table.contains("slowest:"), "{table}");
        }
    }

    #[test]
    fn chaos_cell_carries_fault_instants() {
        let cells = run_trace_cells(TraceDepth::Spans);
        let chaos = cells.iter().find(|c| c.name == "dk-chaos-replication").unwrap();
        for marker in ["\"cat\":\"fault\"", "osd_crash", "card_fault", "dfx_swap", "retry"] {
            assert!(chaos.chrome.contains(marker), "chaos trace lacks {marker}");
        }
        // Probe cells are fault-free: no fault track entries.
        let probe = cells.iter().find(|c| c.name == "dk-rand-read-4k").unwrap();
        assert!(!probe.chrome.contains("\"cat\":\"fault\""));
    }
}
