//! Criterion micro-benchmarks of the Table I kernels: real wall-clock
//! cost of the functional CRUSH and Reed-Solomon implementations this
//! reproduction executes (the virtual-time costs are separate — see the
//! harness).
//!
//! These benches answer "how expensive is the reproduction itself":
//! bucket selection per algorithm, rule execution on the paper's
//! 32-OSD map, and RS encode/decode at the paper's block sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use deliba_bench as _;
use deliba_crush::{Bucket, BucketAlg, MapBuilder, WEIGHT_ONE};
use deliba_ec::ReedSolomon;
use deliba_fpga::accel::{AccelKind, CrushAccelerator, RsEncoderAccel};
use std::hint::black_box;

fn bench_bucket_select(c: &mut Criterion) {
    let mut group = c.benchmark_group("bucket_select_16items");
    for alg in [
        BucketAlg::Uniform,
        BucketAlg::List,
        BucketAlg::Tree,
        BucketAlg::Straw,
        BucketAlg::Straw2,
    ] {
        let bucket = Bucket::new(-1, alg, 1, (0..16).collect(), vec![WEIGHT_ONE; 16]);
        group.bench_function(BenchmarkId::from_parameter(alg.name()), |b| {
            let mut x = 0u32;
            b.iter(|| {
                x = x.wrapping_add(1);
                black_box(bucket.select(black_box(x), 0))
            })
        });
    }
    group.finish();
}

fn bench_do_rule(c: &mut Criterion) {
    // The paper's testbed map and a larger one.
    let mut group = c.benchmark_group("crush_do_rule_3_replicas");
    for (name, hosts, per) in [("2x16_paper", 2usize, 16usize), ("16x8", 16, 8)] {
        let map = MapBuilder::new().build(hosts, per);
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            let mut x = 0u32;
            b.iter(|| {
                x = x.wrapping_add(1);
                black_box(map.do_rule(0, black_box(x), 3))
            })
        });
    }
    group.finish();
}

fn bench_accelerator_models(c: &mut Criterion) {
    let map = MapBuilder::new().build(2, 16);
    let mut group = c.benchmark_group("accelerator_model_place");
    for kind in [AccelKind::Straw2, AccelKind::Tree] {
        let mut accel = CrushAccelerator::new(kind);
        group.bench_function(BenchmarkId::from_parameter(format!("{kind:?}")), |b| {
            let mut x = 0u32;
            b.iter(|| {
                x = x.wrapping_add(1);
                black_box(accel.place(&map, 0, black_box(x), 3))
            })
        });
    }
    group.finish();
}

fn bench_rs_encode(c: &mut Criterion) {
    let mut group = c.benchmark_group("rs_encode_4_2");
    for &size in &[4096usize, 65_536, 131_072] {
        let rs = ReedSolomon::new(4, 2);
        let data = vec![0xA5u8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_function(BenchmarkId::from_parameter(size), |b| {
            b.iter(|| black_box(rs.encode(black_box(&data))))
        });
    }
    group.finish();
}

fn bench_rs_reconstruct(c: &mut Criterion) {
    let rs = ReedSolomon::new(4, 2);
    let data = vec![0x3Cu8; 65_536];
    let shards = rs.encode(&data);
    c.bench_function("rs_reconstruct_2_erasures_64k", |b| {
        b.iter(|| {
            let mut opt: Vec<Option<Vec<u8>>> = shards.iter().cloned().map(Some).collect();
            opt[1] = None;
            opt[4] = None;
            rs.reconstruct(&mut opt).unwrap();
            black_box(opt)
        })
    });
}

fn bench_rs_accel_model(c: &mut Criterion) {
    let mut accel = RsEncoderAccel::new(4, 2);
    let data = vec![0x11u8; 4096];
    c.bench_function("rs_accel_model_encode_4k", |b| {
        b.iter(|| black_box(accel.encode(black_box(&data))))
    });
}

criterion_group!(
    benches,
    bench_bucket_select,
    bench_do_rule,
    bench_accelerator_models,
    bench_rs_encode,
    bench_rs_reconstruct,
    bench_rs_accel_model
);
criterion_main!(benches);
