//! Criterion benchmarks of the end-to-end engine — one bench per paper
//! artifact family, so `cargo bench` regenerates a compact version of
//! every figure while also measuring the simulator's own speed
//! (simulated I/Os per wall-clock second).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use deliba_core::{Engine, EngineConfig, FioSpec, Generation, Mode, Pattern, RwMode};
use std::hint::black_box;

const OPS: u64 = 1_500;

fn bench_generations_4k_randread(c: &mut Criterion) {
    // Fig. 7's anchor cell for each generation.
    let mut group = c.benchmark_group("fig7_rand_read_4k");
    group.throughput(Throughput::Elements(OPS));
    for g in [
        Generation::DeLiBA1,
        Generation::DeLiBA2,
        Generation::DeLiBAK,
    ] {
        group.bench_function(BenchmarkId::from_parameter(g.label()), |b| {
            b.iter(|| {
                let mut e = Engine::new(EngineConfig::new(g, true, Mode::Replication));
                let r = e.run_fio(&FioSpec::paper(RwMode::Read, Pattern::Rand, 4096, OPS));
                black_box(r.kiops)
            })
        });
    }
    group.finish();
}

fn bench_block_size_sweep(c: &mut Criterion) {
    // Fig. 6's DeLiBA-K write row.
    let mut group = c.benchmark_group("fig6_deliba_k_writes");
    for bs in [4096u32, 65_536, 131_072] {
        group.bench_function(BenchmarkId::from_parameter(bs), |b| {
            b.iter(|| {
                let mut e = Engine::new(EngineConfig::new(
                    Generation::DeLiBAK,
                    true,
                    Mode::Replication,
                ));
                let pat = if bs == 4096 { Pattern::Rand } else { Pattern::Seq };
                let r = e.run_fio(&FioSpec::paper(RwMode::Write, pat, bs, OPS));
                black_box(r.throughput_mbps)
            })
        });
    }
    group.finish();
}

fn bench_modes(c: &mut Criterion) {
    // Figs. 6 vs 8: replication vs erasure coding on DeLiBA-K.
    let mut group = c.benchmark_group("fig6_vs_fig8_modes");
    for mode in [Mode::Replication, Mode::ErasureCoding] {
        group.bench_function(BenchmarkId::from_parameter(mode.label()), |b| {
            b.iter(|| {
                let mut e = Engine::new(EngineConfig::new(Generation::DeLiBAK, true, mode));
                let r = e.run_fio(&FioSpec::paper(RwMode::Write, Pattern::Rand, 4096, OPS));
                black_box(r.throughput_mbps)
            })
        });
    }
    group.finish();
}

fn bench_latency_probe(c: &mut Criterion) {
    // Table II's DeLiBA-K random-read cell.
    c.bench_function("table2_deliba_k_latency_probe", |b| {
        b.iter(|| {
            let mut e = Engine::new(EngineConfig::new(
                Generation::DeLiBAK,
                true,
                Mode::Replication,
            ));
            let r = e.run_fio(&FioSpec::latency_probe(RwMode::Read, Pattern::Rand, 4096, 200));
            black_box(r.mean_latency_us)
        })
    });
}

fn bench_sw_baseline(c: &mut Criterion) {
    // Fig. 3's DeLiBA-K software path.
    c.bench_function("fig3_deliba_k_sw_baseline", |b| {
        b.iter(|| {
            let mut e = Engine::new(EngineConfig::new(
                Generation::DeLiBAK,
                false,
                Mode::Replication,
            ));
            let r = e.run_fio(&FioSpec::paper(RwMode::Read, Pattern::Rand, 4096, OPS));
            black_box(r.throughput_mbps)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets =
        bench_generations_4k_randread,
        bench_block_size_sweep,
        bench_modes,
        bench_latency_probe,
        bench_sw_baseline
}
criterion_main!(benches);
