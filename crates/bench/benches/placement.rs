//! Criterion micro-benchmarks of the epoch-keyed placement cache
//! (DESIGN.md §7.4): cached vs. uncached CRUSH selection on the paper's
//! testbed map, plus the worst case where every query lands on a fresh
//! epoch and the cache can never hit.
//!
//! The engine resolves two placements per simulated I/O, so the
//! cached-vs-uncached gap here is the per-op saving the closed-loop
//! perf gate observes end to end.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use deliba_bench as _;
use deliba_cluster::{OsdMap, PoolConfig};
use deliba_crush::rule::Rule;
use deliba_crush::{MapBuilder, RuleStep, WEIGHT_ONE};
use std::hint::black_box;

const PGS: u32 = 128;
const RULE: u32 = 10;

/// The engine's testbed placement problem: 2 servers × 16 OSDs with the
/// OSD-level failure-domain rule `Cluster::new` installs (host-level
/// chooseleaf cannot place 3 replicas across 2 hosts).
fn testbed(cache: bool) -> OsdMap {
    let mut crush = MapBuilder::new().build(2, 16);
    crush.add_rule(Rule {
        id: RULE,
        name: "replicated-osd".into(),
        steps: vec![
            RuleStep::Take(-1),
            RuleStep::ChooseLeaf { num: 0, bucket_type: 0 },
            RuleStep::Emit,
        ],
    });
    let mut m = OsdMap::new(crush);
    m.add_pool(PoolConfig::replicated(1, "rbd", 3, PGS, RULE));
    m.set_placement_cache_enabled(cache);
    m
}

fn bench_selection(c: &mut Criterion) {
    let mut group = c.benchmark_group("placement_3_replicas");
    // The vendored criterion stand-in times `sample_size` raw
    // iterations with no warm-up; the cached case needs enough
    // iterations to reach its steady state (all 128 PGs resident).
    group.sample_size(50_000);
    let pool = 1u32;
    for (name, cache) in [("uncached", false), ("cached", true)] {
        let m = testbed(cache);
        let p = m.pool(pool).expect("pool 1 exists").clone();
        let mut out = Vec::new();
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            // Cycle the PG working set the way the engine does: a small
            // hot key set re-queried across ops, steady-state all-hits
            // when the cache is on.
            let mut seq = 0u32;
            b.iter(|| {
                seq = seq.wrapping_add(1);
                let seed = p.pg_seed(deliba_cluster::PgId { pool, seq: seq % PGS });
                m.do_rule_cached(p.crush_rule, black_box(seed), 3, &mut out);
                black_box(out.len())
            })
        });
    }
    group.finish();
}

fn bench_epoch_churn(c: &mut Criterion) {
    // Adversarial case: the map epoch bumps before every query, so each
    // lookup is a guaranteed miss plus the invalidation bookkeeping.
    // This bounds the cache's overhead over a bare walk.
    let mut m = testbed(true);
    let p = m.pool(1).expect("pool 1 exists").clone();
    let host = m.crush().domain_of(0, 1).expect("osd 0 has a host");
    let mut out = Vec::new();
    let mut group = c.benchmark_group("placement_3_replicas");
    group.sample_size(10_000);
    group.bench_function("miss_every_epoch", |b| {
        let mut seq = 0u32;
        b.iter(|| {
            seq = seq.wrapping_add(1);
            m.reweight(host, 0, WEIGHT_ONE - (seq % 7)).expect("osd 0 reweights");
            let seed = p.pg_seed(deliba_cluster::PgId { pool: 1, seq: seq % PGS });
            m.do_rule_cached(p.crush_rule, black_box(seed), 3, &mut out);
            black_box(out.len())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_selection, bench_epoch_churn);
criterion_main!(benches);
