//! Criterion benchmarks of the concurrency substrates: the io_uring
//! SPSC rings, the blk-mq tag allocator, and the QDMA descriptor rings
//! — the data structures whose cheapness justifies the paper's
//! "zero memory copy" and "per-core queue" claims.

use criterion::{criterion_group, criterion_main, Criterion};
use deliba_blkmq::TagSet;
use deliba_qdma::{Descriptor, DescriptorRing, IfType};
use deliba_uring::entry::{Cqe, Sqe};
use deliba_uring::instance::{IoUring, RingMode};
use deliba_uring::spsc;
use std::hint::black_box;

fn bench_spsc_push_pop(c: &mut Criterion) {
    c.bench_function("spsc_push_pop_u64", |b| {
        let (mut p, mut cons) = spsc::ring::<u64>(1024);
        b.iter(|| {
            p.push(black_box(42)).unwrap();
            black_box(cons.pop())
        })
    });
}

fn bench_spsc_cross_thread(c: &mut Criterion) {
    // Sustained cross-thread transfer rate (items/sec ≈ 1/iter-time).
    c.bench_function("spsc_cross_thread_batch_1k", |b| {
        b.iter_custom(|iters| {
            let (mut p, mut cons) = spsc::ring::<u64>(1024);
            let n = iters * 1_000;
            let start = std::time::Instant::now();
            std::thread::scope(|s| {
                s.spawn(move || {
                    for i in 0..n {
                        while p.push(i).is_err() {
                            std::hint::spin_loop();
                        }
                    }
                });
                let mut seen = 0;
                while seen < n {
                    seen += cons.pop_batch(256).len() as u64;
                }
            });
            start.elapsed() / 1_000
        })
    });
}

fn bench_uring_submit_cycle(c: &mut Criterion) {
    c.bench_function("io_uring_prepare_enter_reap", |b| {
        let mut ring = IoUring::setup(64, RingMode::KernelPolled).unwrap();
        let mut completer =
            |sqe: &Sqe, _: &mut deliba_uring::BufRegistry| Cqe::ok(sqe.user_data, sqe.len);
        b.iter(|| {
            for i in 0..32 {
                ring.prepare(Sqe::read(0, i * 4096, 0, 4096, i));
            }
            ring.enter(&mut completer);
            black_box(ring.peek_cqes(32).len())
        })
    });
}

fn bench_tagset(c: &mut Criterion) {
    c.bench_function("tagset_alloc_free_256", |b| {
        let ts = TagSet::new(256);
        b.iter(|| {
            let t = ts.alloc(black_box(0)).unwrap();
            ts.free(t);
        })
    });

    c.bench_function("tagset_contended_8_threads", |b| {
        b.iter_custom(|iters| {
            let ts = std::sync::Arc::new(TagSet::new(256));
            let per_thread = iters.max(1);
            let start = std::time::Instant::now();
            std::thread::scope(|s| {
                for cpu in 0..8 {
                    let ts = std::sync::Arc::clone(&ts);
                    s.spawn(move || {
                        for _ in 0..per_thread {
                            if let Some(t) = ts.alloc(cpu) {
                                ts.free(t);
                            }
                        }
                    });
                }
            });
            start.elapsed() / 8
        })
    });
}

fn bench_descriptor_ring(c: &mut Criterion) {
    c.bench_function("qdma_descriptor_post_fetch", |b| {
        let mut ring = DescriptorRing::new(64);
        let desc = Descriptor::h2c(0x1000, 4096, IfType::Replication, 0);
        b.iter(|| {
            ring.post(black_box(desc)).unwrap();
            black_box(ring.fetch(1))
        })
    });

    c.bench_function("qdma_descriptor_encode_decode", |b| {
        let desc = Descriptor::h2c(0xDEAD_BEEF, 128 * 1024, IfType::ErasureCoding, 7).with_user(42);
        b.iter(|| {
            let bytes = black_box(&desc).encode();
            black_box(Descriptor::decode(&bytes))
        })
    });
}

criterion_group!(
    benches,
    bench_spsc_push_pop,
    bench_spsc_cross_thread,
    bench_uring_submit_cycle,
    bench_tagset,
    bench_descriptor_ring
);
criterion_main!(benches);
