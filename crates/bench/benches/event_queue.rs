//! Old-vs-new event-queue microbenchmarks.
//!
//! The simulator's queue used to be a `BinaryHeap<Scheduled<E>>` whose
//! payloads were `Box<dyn FnOnce>` closures — one heap allocation per
//! scheduled event, freed on pop (a local replica lives below so the
//! comparison survives the old code's removal; `Box<u64>` stands in for
//! the boxed closure).  The replacement is an index-based 4-ary min-heap
//! with inline `(SimTime, seq)` keys and a slot arena that recycles
//! payload storage across pops, so steady-state scheduling allocates
//! nothing.  Each pattern also runs the new queue against a plain
//! *inline* binary heap (`u64` payload, no boxing) to show the heap
//! layouts alone are comparable — the arena's win is the allocation it
//! removes, not the sift.  Two access patterns bracket the engine's
//! behaviour:
//!
//! * **churn** — steady-state schedule/pop with pseudo-random deltas,
//!   the closed-loop engine's hot path;
//! * **burst** — many events at the *same* timestamp then a full drain,
//!   the token-refill pattern (FIFO tie-break order must hold).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use deliba_sim::{EventQueue, SimDuration, SimTime};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::hint::black_box;

// --- Replica of the pre-overhaul queue -------------------------------

struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// The old queue: binary max-heap over reversed keys, payload moved on
/// every sift.
struct OldQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
}

impl<E> OldQueue<E> {
    fn new() -> Self {
        OldQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    fn schedule_at(&mut self, at: SimTime, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { at, seq, payload });
    }

    fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|s| (s.at, s.payload))
    }
}

// --- Workloads --------------------------------------------------------

const CHURN_OPS: u64 = 100_000;
const BURST: u64 = 4_096;

/// The old queue as the simulator used it: every event a fresh `Box`.
fn churn_old_boxed(prefill: u64) -> u64 {
    let mut q: OldQueue<Box<u64>> = OldQueue::new();
    for i in 0..prefill {
        q.schedule_at(SimTime::from_nanos(i), Box::new(i));
    }
    let mut x = 0x9E37_79B9_7F4A_7C15u64;
    let mut acc = 0u64;
    for _ in 0..CHURN_OPS {
        let (at, v) = q.pop().expect("populated");
        acc = acc.wrapping_add(*v);
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        q.schedule_at(
            at + SimDuration::from_nanos(1 + ((x >> 33) & 1023)),
            Box::new(*v),
        );
    }
    acc
}

/// The old heap layout with the boxing stripped (best case for it).
fn churn_old_inline(prefill: u64) -> u64 {
    let mut q: OldQueue<u64> = OldQueue::new();
    for i in 0..prefill {
        q.schedule_at(SimTime::from_nanos(i), i);
    }
    let mut x = 0x9E37_79B9_7F4A_7C15u64;
    let mut acc = 0u64;
    for _ in 0..CHURN_OPS {
        let (at, v) = q.pop().expect("populated");
        acc = acc.wrapping_add(v);
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        q.schedule_at(at + SimDuration::from_nanos(1 + ((x >> 33) & 1023)), v);
    }
    acc
}

fn churn_new(prefill: u64) -> u64 {
    let mut q: EventQueue<u64> = EventQueue::with_capacity(prefill as usize);
    for i in 0..prefill {
        q.schedule_at(SimTime::from_nanos(i), i);
    }
    let mut x = 0x9E37_79B9_7F4A_7C15u64;
    let mut acc = 0u64;
    for _ in 0..CHURN_OPS {
        let (at, v) = q.pop().expect("populated");
        acc = acc.wrapping_add(v);
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        q.schedule_at(at + SimDuration::from_nanos(1 + ((x >> 33) & 1023)), v);
    }
    acc
}

fn burst_old_boxed() -> u64 {
    let mut q: OldQueue<Box<u64>> = OldQueue::new();
    let mut acc = 0u64;
    for round in 0..8u64 {
        let t = SimTime::from_nanos(round);
        for i in 0..BURST {
            q.schedule_at(t, Box::new(i));
        }
        let mut expect = 0u64;
        while let Some((_, v)) = q.pop() {
            assert_eq!(*v, expect, "FIFO tie-break");
            expect += 1;
            acc = acc.wrapping_add(*v);
        }
    }
    acc
}

fn burst_new() -> u64 {
    let mut q: EventQueue<u64> = EventQueue::new();
    let mut acc = 0u64;
    for round in 0..8u64 {
        let t = SimTime::from_nanos(round);
        for i in 0..BURST {
            q.schedule_at(t, i);
        }
        let mut expect = 0u64;
        while let Some((_, v)) = q.pop() {
            assert_eq!(v, expect, "FIFO tie-break");
            expect += 1;
            acc = acc.wrapping_add(v);
        }
    }
    acc
}

fn bench_churn(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue_churn");
    group.throughput(Throughput::Elements(CHURN_OPS));
    for prefill in [64u64, 1024, 16_384] {
        group.bench_function(BenchmarkId::new("old_boxed_payloads", prefill), |b| {
            b.iter(|| black_box(churn_old_boxed(prefill)))
        });
        group.bench_function(BenchmarkId::new("old_inline_binary_heap", prefill), |b| {
            b.iter(|| black_box(churn_old_inline(prefill)))
        });
        group.bench_function(BenchmarkId::new("new_4ary_arena", prefill), |b| {
            b.iter(|| black_box(churn_new(prefill)))
        });
    }
    group.finish();
}

fn bench_burst(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue_same_timestamp_burst");
    group.throughput(Throughput::Elements(8 * BURST));
    group.bench_function("old_boxed_payloads", |b| b.iter(|| black_box(burst_old_boxed())));
    group.bench_function("new_4ary_arena", |b| b.iter(|| black_box(burst_new())));
    group.finish();
}

criterion_group!(benches, bench_churn, bench_burst);
criterion_main!(benches);
